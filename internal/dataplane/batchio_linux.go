//go:build linux && (amd64 || arm64)

// Batched socket I/O for the dataplane hot path: recvmmsg/sendmmsg move
// a burst of datagrams per syscall, amortizing kernel-crossing cost the
// way an ASIC amortizes per-packet work across its pipeline. The fast
// path engages only on plain *net.UDPConn sockets; fault-injection
// wrappers and tests keep the portable per-datagram path.
//
// Everything here uses only the standard library: raw syscalls through
// (*net.UDPConn).SyscallConn so the runtime netpoller still owns
// blocking, deadlines, and close semantics.

package dataplane

import (
	"net"
	"syscall"
	"unsafe"
)

// mmsghdr mirrors the kernel's struct mmsghdr (linux/amd64 and arm64
// share the layout): a msghdr plus the kernel-reported datagram length.
type mmsghdr struct {
	hdr syscall.Msghdr
	n   uint32
	_   [4]byte
}

// sockaddrBuf holds either an IPv4 or IPv6 raw sockaddr.
type sockaddrBuf [syscall.SizeofSockaddrInet6]byte

// putSockaddr encodes addr into buf and returns the sockaddr length.
func putSockaddr(buf *sockaddrBuf, addr *net.UDPAddr) (uint32, bool) {
	if ip4 := addr.IP.To4(); ip4 != nil {
		sa := (*syscall.RawSockaddrInet4)(unsafe.Pointer(buf))
		sa.Family = syscall.AF_INET
		sa.Port = uint16(addr.Port>>8) | uint16(addr.Port&0xff)<<8
		copy(sa.Addr[:], ip4)
		return syscall.SizeofSockaddrInet4, true
	}
	if ip6 := addr.IP.To16(); ip6 != nil {
		sa := (*syscall.RawSockaddrInet6)(unsafe.Pointer(buf))
		sa.Family = syscall.AF_INET6
		sa.Port = uint16(addr.Port>>8) | uint16(addr.Port&0xff)<<8
		copy(sa.Addr[:], ip6)
		return syscall.SizeofSockaddrInet6, true
	}
	return 0, false
}

// batchReader drains an ingress socket with recvmmsg.
type batchReader struct {
	rc    syscall.RawConn
	hdrs  []mmsghdr
	iovs  []syscall.Iovec
	names []sockaddrBuf

	// readFn is allocated once; req/got/errno carry its arguments and
	// results so the hot loop stays allocation-free.
	readFn func(fd uintptr) bool
	req    int
	got    int
	errno  syscall.Errno
}

// newBatchReader returns a recvmmsg-backed reader for c, or nil when c
// is not a plain *net.UDPConn (fault-injection wrappers, in-memory test
// conns) or batching is disabled.
func newBatchReader(c Conn, batch int) *batchReader {
	uc, ok := c.(*net.UDPConn)
	if !ok || batch <= 1 {
		return nil
	}
	rc, err := uc.SyscallConn()
	if err != nil {
		return nil
	}
	br := &batchReader{
		rc:    rc,
		hdrs:  make([]mmsghdr, batch),
		iovs:  make([]syscall.Iovec, batch),
		names: make([]sockaddrBuf, batch),
	}
	br.readFn = func(fd uintptr) bool {
		r, _, errno := syscall.Syscall6(sysRECVMMSG, fd,
			uintptr(unsafe.Pointer(&br.hdrs[0])), uintptr(br.req), 0, 0, 0)
		if errno == syscall.EAGAIN {
			return false // wait for readability in the netpoller
		}
		br.errno = errno
		br.got = int(r)
		return true
	}
	return br
}

// ReadBatch blocks until at least one datagram arrives, then fills bufs
// with up to min(len(bufs), batch) datagrams in one recvmmsg call and
// records each datagram's length in sizes.
//
//camus:hotpath
func (br *batchReader) ReadBatch(bufs [][]byte, sizes []int) (int, error) {
	n := len(bufs)
	if n > len(br.hdrs) {
		n = len(br.hdrs)
	}
	for i := 0; i < n; i++ {
		br.iovs[i].Base = &bufs[i][0]
		br.iovs[i].Len = uint64(len(bufs[i]))
		h := &br.hdrs[i].hdr
		h.Name = &br.names[i][0]
		h.Namelen = uint32(len(br.names[i]))
		h.Iov = &br.iovs[i]
		h.Iovlen = 1
	}
	br.req, br.got, br.errno = n, 0, 0
	if err := br.rc.Read(br.readFn); err != nil {
		return 0, err
	}
	if br.errno != 0 {
		//camus:alloc-ok Errno is < 256, so boxing hits the runtime's static small-value cache — no heap allocation
		return 0, br.errno
	}
	for i := 0; i < br.got; i++ {
		sizes[i] = int(br.hdrs[i].n)
	}
	return br.got, nil
}

// batchWriter ships egress bursts with sendmmsg. Each processing lane
// owns one (the scratch arrays are not shareable); the underlying fd is
// safe to write from any number of lanes.
type batchWriter struct {
	rc    syscall.RawConn
	hdrs  []mmsghdr
	iovs  []syscall.Iovec
	names []sockaddrBuf

	writeFn func(fd uintptr) bool
	req     int
	sent    int
	errno   syscall.Errno
}

// newBatchWriter returns a sendmmsg-backed writer for c, or nil when the
// socket is wrapped or the platform lacks the syscall.
func newBatchWriter(c Conn) *batchWriter {
	uc, ok := c.(*net.UDPConn)
	if !ok {
		return nil
	}
	rc, err := uc.SyscallConn()
	if err != nil {
		return nil
	}
	bw := &batchWriter{rc: rc}
	bw.writeFn = func(fd uintptr) bool {
		r, _, errno := syscall.Syscall6(sysSENDMMSG, fd,
			uintptr(unsafe.Pointer(&bw.hdrs[0])), uintptr(bw.req), 0, 0, 0)
		if errno == syscall.EAGAIN {
			return false // wait for writability
		}
		bw.errno = errno
		bw.sent = int(r)
		return true
	}
	return bw
}

// WriteBatch sends one datagram per entry in a single sendmmsg call and
// returns how many the kernel accepted; the caller re-invokes with the
// remainder on partial sends. A non-nil error refers to entry n.
//
// Entry i is pkts[i] alone when tails[i] is nil, or the scatter pair
// pkts[i]+tails[i] when it is not — the multicast egress shape, where
// pkts[i] is a per-port MoldUDP64 header and tails[i] a body shared by
// every member of the group. The kernel gathers the pair on the way into
// the skb, so member datagrams never exist contiguously in user memory.
//
//camus:hotpath
func (bw *batchWriter) WriteBatch(pkts, tails [][]byte, addrs []*net.UDPAddr) (int, error) {
	n := len(pkts)
	if n == 0 {
		return 0, nil
	}
	if n > len(bw.hdrs) {
		grow := n - len(bw.hdrs)
		//camus:alloc-ok scratch grows to the high-water burst size once, then is reused
		bw.hdrs = append(bw.hdrs, make([]mmsghdr, grow)...)
		bw.names = append(bw.names, make([]sockaddrBuf, grow)...) //camus:alloc-ok scratch grows to the high-water burst size once, then is reused
	}
	if 2*n > len(bw.iovs) {
		bw.iovs = append(bw.iovs, make([]syscall.Iovec, 2*n-len(bw.iovs))...) //camus:alloc-ok scratch grows to the high-water burst size once, then is reused
	}
	for i := 0; i < n; i++ {
		salen, ok := putSockaddr(&bw.names[i], addrs[i])
		if !ok {
			//camus:alloc-ok Errno is < 256, so boxing hits the runtime's static small-value cache — no heap allocation
			return 0, syscall.EINVAL
		}
		iov := &bw.iovs[2*i]
		iov.Base = &pkts[i][0]
		iov.Len = uint64(len(pkts[i]))
		h := &bw.hdrs[i].hdr
		h.Name = &bw.names[i][0]
		h.Namelen = salen
		h.Iov = iov
		h.Iovlen = 1
		if i < len(tails) && len(tails[i]) > 0 {
			tv := &bw.iovs[2*i+1]
			tv.Base = &tails[i][0]
			tv.Len = uint64(len(tails[i]))
			h.Iovlen = 2
		}
	}
	bw.req, bw.sent, bw.errno = n, 0, 0
	if err := bw.rc.Write(bw.writeFn); err != nil {
		return 0, err
	}
	if bw.errno != 0 {
		//camus:alloc-ok Errno is < 256, so boxing hits the runtime's static small-value cache — no heap allocation
		return 0, bw.errno
	}
	return bw.sent, nil
}
