package dataplane

import (
	"bytes"
	"errors"
	"net"
	"testing"
	"time"

	"camus/internal/itch"
	"camus/internal/spec"
	"camus/internal/telemetry"
	"camus/internal/workload"
)

// startGroupSwitch builds a switch whose program multicasts GOOGL to
// ports {1, 2} (one compiled fanout group) with two live subscriber
// sockets and a running retransmission responder. perPort selects the
// per-subscriber-encode baseline instead of the shared-body engine.
func startGroupSwitch(t *testing.T, perPort bool) (*Switch, *net.UDPConn, *net.UDPConn) {
	t.Helper()
	sub1, sub2 := listenUDP(t), listenUDP(t)
	sw, err := Listen(Config{
		Spec:          spec.MustParse(workload.ITCHSpecSource),
		Session:       "GRETX",
		Subscriptions: "stock == GOOGL : fwd(1)\nstock == GOOGL : fwd(2)",
		RetxBuffer:    64,
		PerPortEncode: perPort,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sw.Close() })
	for port, conn := range map[int]*net.UDPConn{1: sub1, 2: sub2} {
		if _, err := sw.Subscribe(SubscriberConfig{Port: port, Addr: conn.LocalAddr().String()}); err != nil {
			t.Fatal(err)
		}
	}
	go sw.serveRetx()
	return sw, sub1, sub2
}

func recvRaw(t *testing.T, conn *net.UDPConn) []byte {
	t.Helper()
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	buf := make([]byte, 64<<10)
	n, _, err := conn.ReadFromUDP(buf)
	if err != nil {
		t.Fatal(err)
	}
	return buf[:n]
}

// TestGroupRetxByteExact is the wire contract of the encode-once engine:
// every member of a multicast group must see exactly the datagram a
// per-port-encoded switch would have sent it — same patched session and
// sequence header, same body — and a retransmission of a group-encoded
// range, served from the shared body the ring retained, must reproduce
// the live frame byte for byte.
func TestGroupRetxByteExact(t *testing.T) {
	const rounds = 3
	feed := func(t *testing.T, perPort bool) (*Switch, [2][][]byte) {
		sw, sub1, sub2 := startGroupSwitch(t, perPort)
		st := sw.newProcState()
		for r := 0; r < rounds; r++ {
			// Two matches per datagram (one group frame of count 2 per
			// round) plus a non-matching order that must not leak in.
			wire := moldWith(t, "ING", uint64(1+2*r),
				order("GOOGL", uint32(10+r), 1000),
				order("GOOGL", uint32(20+r), 1001),
				order("ORCL", 30, 1000))
			sw.processDatagram(st, wire)
		}
		var live [2][][]byte
		for i, conn := range []*net.UDPConn{sub1, sub2} {
			for r := 0; r < rounds; r++ {
				live[i] = append(live[i], recvRaw(t, conn))
			}
		}
		return sw, live
	}

	grp, groupLive := feed(t, false)
	ctl, ctlLive := feed(t, true)
	if got := grp.Metric("camus_dataplane_group_encodes_total"); got != rounds {
		t.Fatalf("group switch encoded %d bodies, want %d", got, rounds)
	}
	if got := ctl.Metric("camus_dataplane_group_encodes_total"); got != 0 {
		t.Fatalf("per-port control group-encoded %d bodies, want 0", got)
	}

	// Same Session base and port numbers mean the two switches emit
	// identical session identities, so the frames must match exactly.
	for p := 0; p < 2; p++ {
		for r := 0; r < rounds; r++ {
			if !bytes.Equal(groupLive[p][r], ctlLive[p][r]) {
				t.Fatalf("port %d frame %d: group-encoded wire differs from per-port control\n group: %x\n perport: %x",
					p+1, r, groupLive[p][r], ctlLive[p][r])
			}
		}
	}

	// Retransmissions are served from the shared bodies the rings alias;
	// the replies must be byte-exact replays of the live frames.
	for pi, port := range []int{1, 2} {
		rx, err := net.DialUDP("udp", nil, grp.RetxAddr())
		if err != nil {
			t.Fatal(err)
		}
		defer rx.Close()
		for r := 0; r < rounds; r++ {
			req := itch.MoldRequest{Sequence: uint64(1 + 2*r), Count: 2}
			copy(req.Session[:], grp.PortSession(port))
			if _, err := rx.Write(req.Bytes()); err != nil {
				t.Fatal(err)
			}
			reply := recvRaw(t, rx)
			if !bytes.Equal(reply, groupLive[pi][r]) {
				t.Fatalf("port %d seq %d: retransmission differs from live group frame\n retx: %x\n live: %x",
					port, 1+2*r, reply, groupLive[pi][r])
			}
		}
	}
}

// errorConn refuses every egress write, exercising the send-error
// accounting on the non-batch fallback path.
type errorConn struct{}

func (errorConn) ReadFromUDP(b []byte) (int, *net.UDPAddr, error) {
	return 0, nil, errors.New("errorConn: no ingress")
}
func (errorConn) WriteToUDP(b []byte, addr *net.UDPAddr) (int, error) {
	return 0, errors.New("errorConn: egress refused")
}
func (errorConn) SetReadDeadline(time.Time) error { return nil }
func (errorConn) Close() error                    { return nil }
func (errorConn) LocalAddr() net.Addr             { return &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)} }

// TestSendEgressPortErrorAttribution: a failed egress write must land in
// the global send-error counter AND the per-destination-port labeled
// series, on the non-batch fallback path (the wrapped-conn case where
// sendmmsg is unavailable).
func TestSendEgressPortErrorAttribution(t *testing.T) {
	sink := listenUDP(t)
	sw, err := Listen(Config{
		Spec:          spec.MustParse(workload.ITCHSpecSource),
		Subscriptions: "stock == GOOGL : fwd(1)\nstock == MSFT : fwd(2)",
		Telemetry:     telemetry.New(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sw.Close()
	for _, port := range []int{1, 2} {
		if _, err := sw.Subscribe(SubscriberConfig{Port: port, Addr: sink.LocalAddr().String()}); err != nil {
			t.Fatal(err)
		}
	}

	// errorConn is not a *net.UDPConn, so newBatchWriter declines and the
	// lane takes the per-datagram fallback — the path whose error
	// accounting this test pins down.
	st := sw.newProcStateOn(errorConn{})
	wire := moldWith(t, "S", 1,
		order("GOOGL", 10, 1000),
		order("MSFT", 20, 1000))
	sw.processDatagram(st, wire)

	if got := sw.Metric("camus_dataplane_send_errors_total"); got != 2 {
		t.Fatalf("send_errors_total = %d, want 2", got)
	}
	if got := sw.Metric("camus_dataplane_forwarded_total"); got != 0 {
		t.Fatalf("forwarded_total = %d, want 0", got)
	}
	for _, port := range []int{1, 2} {
		if got := sw.PortSendErrors(port); got != 1 {
			t.Fatalf("PortSendErrors(%d) = %d, want 1", port, got)
		}
	}
	if got := sw.PortSendErrors(3); got != 0 {
		t.Fatalf("PortSendErrors(3) = %d, want 0", got)
	}
	snap := sw.Snapshot()
	for _, key := range []string{
		`camus_dataplane_port_send_errors_total{port="1"}`,
		`camus_dataplane_port_send_errors_total{port="2"}`,
	} {
		if snap.Counters[key] != 1 {
			t.Fatalf("snapshot %s = %d, want 1", key, snap.Counters[key])
		}
	}
}
