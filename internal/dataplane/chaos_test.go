package dataplane

import (
	"context"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"camus/internal/faults"
	"camus/internal/itch"
	"camus/internal/spec"
	"camus/internal/telemetry"
	"camus/internal/workload"
)

// chaosHarness wires a fault-injected switch to a gap-recovering
// receiver over real loopback UDP. Both ends share one telemetry
// registry, so chaos runs double as end-to-end metric validation.
type chaosHarness struct {
	sw  *Switch
	rcv *Receiver
	pub *net.UDPConn
	tel *telemetry.Telemetry

	mu    sync.Mutex
	seqs  []uint64
	gaps  [][2]uint64
	eos   bool
	runCh chan error
}

func startChaos(t *testing.T, plan faults.Plan, retxBuffer int, rcvTimeout time.Duration) *chaosHarness {
	return startChaosWorkers(t, plan, retxBuffer, rcvTimeout, 1)
}

func startChaosWorkers(t *testing.T, plan faults.Plan, retxBuffer int, rcvTimeout time.Duration, workers int) *chaosHarness {
	t.Helper()
	h := &chaosHarness{runCh: make(chan error, 1), tel: telemetry.New()}

	var rcvErr error
	h.rcv, rcvErr = NewReceiver(ReceiverConfig{
		RequestTimeout: rcvTimeout,
		Seed:           3,
		Telemetry:      h.tel,
		OnMessage: func(seq uint64, msg []byte) {
			h.mu.Lock()
			h.seqs = append(h.seqs, seq)
			h.mu.Unlock()
		},
		OnGap: func(from, to uint64) {
			h.mu.Lock()
			h.gaps = append(h.gaps, [2]uint64{from, to})
			h.mu.Unlock()
		},
		OnEndOfSession: func() {
			h.mu.Lock()
			h.eos = true
			h.mu.Unlock()
		},
	})
	if rcvErr != nil {
		t.Fatal(rcvErr)
	}
	t.Cleanup(func() { h.rcv.Close() })

	// Fresh injectors per socket and direction, all derived from the one
	// seeded plan, so the whole chaos run is replayable.
	mkWrap := func() func(Conn) Conn {
		seed := plan.Seed
		return func(c Conn) Conn {
			in, eg := plan, plan
			in.Seed, eg.Seed = seed, seed+1
			seed += 2
			return faults.WrapConn(c, &in, &eg)
		}
	}
	sw, err := Listen(Config{
		Spec:          spec.MustParse(workload.ITCHSpecSource),
		Subscriptions: "stock == GOOGL : fwd(1)",
		RetxBuffer:    retxBuffer,
		Heartbeat:     20 * time.Millisecond,
		Workers:       workers,
		WrapConn:      mkWrap(),
		Telemetry:     h.tel,
	})
	if err != nil {
		t.Fatal(err)
	}
	h.sw = sw
	t.Cleanup(func() { sw.Close() })
	if err := sw.BindPort(1, h.rcv.Addr().String()); err != nil {
		t.Fatal(err)
	}

	// The receiver learns the retransmission channel out of band.
	h.rcv.retxAddr = sw.RetxAddr()

	ctx, cancel := context.WithCancel(context.Background())
	t.Cleanup(cancel)
	go func() { _ = sw.Run(ctx) }()
	go func() { h.runCh <- h.rcv.Run(ctx) }()

	pub, err := net.DialUDP("udp", nil, sw.Addr())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { pub.Close() })
	h.pub = pub
	return h
}

// publish streams count GOOGL add-orders, several per datagram, pacing
// lightly so loopback buffers keep up.
func (h *chaosHarness) publish(t *testing.T, count, perDatagram int) {
	t.Helper()
	var seq uint64 = 1
	sent := 0
	for sent < count {
		var mp itch.MoldPacket
		mp.Header.SetSession("INGRESS")
		mp.Header.Sequence = seq
		n := perDatagram
		if count-sent < n {
			n = count - sent
		}
		for i := 0; i < n; i++ {
			var o itch.AddOrder
			o.SetStock("GOOGL")
			// Vary the locate code across datagrams so sharded runs
			// spread the stream over every worker lane.
			o.StockLocate = uint16(seq % 31)
			o.Shares = uint32(sent + i + 1)
			o.Side = itch.Buy
			mp.Append(o.Bytes())
		}
		if _, err := h.pub.Write(mp.Bytes()); err != nil {
			t.Fatal(err)
		}
		seq += uint64(n)
		sent += n
		if sent%128 == 0 {
			time.Sleep(time.Millisecond)
		}
	}
}

// stableMatched waits for the switch's matched counter to stop moving and
// returns it: the ground truth of how many messages entered the egress
// stream (ingress faults legitimately shrink it).
func (h *chaosHarness) stableMatched(t *testing.T) uint64 {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	last := h.sw.Stats().Matched.Load()
	stableSince := time.Now()
	for time.Now().Before(deadline) {
		time.Sleep(25 * time.Millisecond)
		cur := h.sw.Stats().Matched.Load()
		if cur != last {
			last, stableSince = cur, time.Now()
			continue
		}
		if time.Since(stableSince) > 300*time.Millisecond {
			return cur
		}
	}
	t.Fatal("matched counter never stabilized")
	return 0
}

// TestChaosRecoveryFullStream is the headline chaos scenario: seeded
// drop + duplication + reordering on both directions of the dataplane
// sockets, and the receiver still surfaces 100% of the matched messages,
// in order, with no gap declared lost. It runs single-lane and sharded
// (4 workers): the multi-worker dataplane adds cross-lane egress
// reordering on top of the injected faults, and delivery must still be
// complete and in sequence order.
func TestChaosRecoveryFullStream(t *testing.T) {
	for _, workers := range []int{1, 4} {
		t.Run(fmt.Sprintf("workers-%d", workers), func(t *testing.T) {
			total := 3000
			if testing.Short() {
				total = 600
			}
			plan := faults.Plan{Seed: 11, Drop: 0.01, Duplicate: 0.005, Reorder: 0.01}
			h := startChaosWorkers(t, plan, 0 /* default store */, 15*time.Millisecond, workers)
			h.publish(t, total, 4)

			matched := h.stableMatched(t)
			if matched == 0 {
				t.Fatal("nothing matched")
			}
			deadline := time.Now().Add(20 * time.Second)
			for h.rcv.Stats().Delivered.Load() < matched && time.Now().Before(deadline) {
				time.Sleep(10 * time.Millisecond)
			}

			h.mu.Lock()
			defer h.mu.Unlock()
			if uint64(len(h.seqs)) != matched {
				t.Fatalf("delivered %d of %d matched messages (gaps lost: %v)", len(h.seqs), matched, h.gaps)
			}
			for i, s := range h.seqs {
				if s != uint64(i+1) {
					t.Fatalf("delivery %d has sequence %d: stream not dense/in-order", i, s)
				}
			}
			if len(h.gaps) != 0 {
				t.Fatalf("gaps declared lost despite full store: %v", h.gaps)
			}
			if h.rcv.Stats().Recovered.Load() == 0 && h.sw.Stats().RetxRequests.Load() == 0 {
				t.Fatal("chaos plan injected no recoverable loss; test is vacuous")
			}
		})
	}
}

// TestChaosAgedOutStoreReportsGapLost: with a tiny retransmission store
// and heavy loss, the receiver must not hang — unrecoverable ranges are
// reported as explicit gap-lost events and delivery continues in order
// past them, with delivered + lost covering the whole egress stream.
func TestChaosAgedOutStoreReportsGapLost(t *testing.T) {
	total := 1200
	if testing.Short() {
		total = 400
	}
	plan := faults.Plan{Seed: 23, Drop: 0.30}
	h := startChaos(t, plan, 16 /* tiny store */, 15*time.Millisecond)
	h.publish(t, total, 8)

	matched := h.stableMatched(t)
	deadline := time.Now().Add(20 * time.Second)
	for h.rcv.NextSeq() <= matched && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if h.rcv.NextSeq() <= matched {
		t.Fatalf("receiver hung at seq %d of %d", h.rcv.NextSeq(), matched)
	}

	h.mu.Lock()
	defer h.mu.Unlock()
	lost := h.rcv.Stats().GapsLost.Load()
	delivered := h.rcv.Stats().Delivered.Load()
	if lost == 0 {
		t.Fatal("no gap-lost events despite aged-out store")
	}
	if delivered+lost != matched {
		t.Fatalf("delivered %d + lost %d != matched %d", delivered, lost, matched)
	}
	for i := 1; i < len(h.seqs); i++ {
		if h.seqs[i] <= h.seqs[i-1] {
			t.Fatalf("delivery order violated: %d after %d", h.seqs[i], h.seqs[i-1])
		}
	}
}

// TestReceiverEndOfSession: closing the switch announces end-of-session
// and the receiver's Run returns cleanly once the stream is drained.
func TestReceiverEndOfSession(t *testing.T) {
	h := startChaos(t, faults.Plan{}, 0, 15*time.Millisecond)
	h.publish(t, 10, 2)

	deadline := time.Now().Add(5 * time.Second)
	for h.rcv.Stats().Delivered.Load() < 10 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if got := h.rcv.Stats().Delivered.Load(); got != 10 {
		t.Fatalf("delivered %d before close", got)
	}
	if err := h.sw.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-h.runCh:
		if err != nil {
			t.Fatalf("receiver Run: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("receiver did not terminate on end-of-session")
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if !h.eos {
		t.Fatal("OnEndOfSession not invoked")
	}
	if len(h.gaps) != 0 {
		t.Fatalf("unexpected gaps: %v", h.gaps)
	}
}
