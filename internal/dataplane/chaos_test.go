package dataplane

import (
	"context"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"camus/internal/faults"
	"camus/internal/itch"
	"camus/internal/spec"
	"camus/internal/telemetry"
	"camus/internal/workload"
)

// chaosHarness wires a fault-injected switch to a gap-recovering
// receiver over real loopback UDP. Both ends share one telemetry
// registry, so chaos runs double as end-to-end metric validation.
type chaosHarness struct {
	sw  *Switch
	rcv *Receiver
	pub *net.UDPConn
	tel *telemetry.Telemetry

	mu        sync.Mutex
	seqs      []uint64
	locShares map[uint16][]uint32 // per-instrument delivered shares, in delivery order
	gaps      [][2]uint64
	eos       bool
	runCh     chan error
}

func startChaos(t *testing.T, plan faults.Plan, retxBuffer int, rcvTimeout time.Duration) *chaosHarness {
	return startChaosWorkers(t, plan, retxBuffer, rcvTimeout, 1)
}

func startChaosWorkers(t *testing.T, plan faults.Plan, retxBuffer int, rcvTimeout time.Duration, workers int) *chaosHarness {
	return startChaosMode(t, plan, false, retxBuffer, rcvTimeout, workers, IngressAuto)
}

// startChaosMode is the full-control harness entry: egressOnly restricts
// fault injection to the switch's send side (so the switch sees the
// publisher's exact ingress order, making per-instrument ordering
// assertions sharp), and mode selects the ingress architecture.
func startChaosMode(t *testing.T, plan faults.Plan, egressOnly bool, retxBuffer int, rcvTimeout time.Duration, workers int, mode IngressMode) *chaosHarness {
	t.Helper()
	h := &chaosHarness{
		runCh:     make(chan error, 1),
		tel:       telemetry.New(),
		locShares: make(map[uint16][]uint32),
	}

	var rcvErr error
	h.rcv, rcvErr = NewReceiver(ReceiverConfig{
		RequestTimeout: rcvTimeout,
		Seed:           3,
		Telemetry:      h.tel,
		OnMessage: func(seq uint64, msg []byte) {
			var o itch.AddOrder
			h.mu.Lock()
			h.seqs = append(h.seqs, seq)
			if err := o.DecodeFromBytes(msg); err == nil {
				h.locShares[o.StockLocate] = append(h.locShares[o.StockLocate], o.Shares)
			}
			h.mu.Unlock()
		},
		OnGap: func(from, to uint64) {
			h.mu.Lock()
			h.gaps = append(h.gaps, [2]uint64{from, to})
			h.mu.Unlock()
		},
		OnEndOfSession: func() {
			h.mu.Lock()
			h.eos = true
			h.mu.Unlock()
		},
	})
	if rcvErr != nil {
		t.Fatal(rcvErr)
	}
	t.Cleanup(func() { h.rcv.Close() })

	// Fresh injectors per socket and direction, all derived from the one
	// seeded plan, so the whole chaos run is replayable. With egressOnly
	// the read side of every socket is clean: the switch processes the
	// publisher's exact datagram order, and only its sends face chaos.
	mkWrap := func() func(Conn) Conn {
		seed := plan.Seed
		return func(c Conn) Conn {
			in, eg := plan, plan
			if egressOnly {
				in = faults.Plan{}
			}
			in.Seed, eg.Seed = seed, seed+1
			seed += 2
			return faults.WrapConn(c, &in, &eg)
		}
	}
	// A second fwd target on the same predicate makes ports {1, 7} a
	// compiled multicast group, so every chaos run drives the shared-body
	// egress engine: the receiver's frames — and every retransmission it
	// recovers — are served from group-encoded shared buffers. Port 7 is
	// a plain sink socket; its copy is not asserted on, it exists to keep
	// the group real.
	sw, err := Listen(Config{
		Spec:          spec.MustParse(workload.ITCHSpecSource),
		Subscriptions: "stock == GOOGL : fwd(1)\nstock == GOOGL : fwd(7)",
		RetxBuffer:    retxBuffer,
		Heartbeat:     20 * time.Millisecond,
		Workers:       workers,
		IngressMode:   mode,
		WrapConn:      mkWrap(),
		Telemetry:     h.tel,
	})
	if err != nil {
		t.Fatal(err)
	}
	h.sw = sw
	t.Cleanup(func() { sw.Close() })
	sink, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sink.Close() })
	sub, err := sw.Subscribe(SubscriberConfig{Port: 1, Addr: h.rcv.Addr().String(), Group: "chaos"})
	if err != nil {
		t.Fatal(err)
	}
	if sub.Port() != 1 || sub.Group() != "chaos" {
		t.Fatalf("subscription identity: port=%d group=%q", sub.Port(), sub.Group())
	}
	if _, err := sw.Subscribe(SubscriberConfig{Port: 7, Addr: sink.LocalAddr().String(), Group: "chaos"}); err != nil {
		t.Fatal(err)
	}

	// The receiver learns the retransmission channel out of band.
	h.rcv.retxAddr = sw.RetxAddr()

	ctx, cancel := context.WithCancel(context.Background())
	t.Cleanup(cancel)
	go func() { _ = sw.Run(ctx) }()
	go func() { h.runCh <- h.rcv.Run(ctx) }()

	pub, err := net.DialUDP("udp", nil, sw.Addr())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { pub.Close() })
	h.pub = pub
	return h
}

// publish streams count GOOGL add-orders, several per datagram, pacing
// lightly so loopback buffers keep up.
func (h *chaosHarness) publish(t *testing.T, count, perDatagram int) {
	t.Helper()
	var seq uint64 = 1
	sent := 0
	for sent < count {
		var mp itch.MoldPacket
		mp.Header.SetSession("INGRESS")
		mp.Header.Sequence = seq
		n := perDatagram
		if count-sent < n {
			n = count - sent
		}
		for i := 0; i < n; i++ {
			var o itch.AddOrder
			o.SetStock("GOOGL")
			// Vary the locate code across datagrams so sharded runs
			// spread the stream over every worker lane.
			o.StockLocate = uint16(seq % 31)
			o.Shares = uint32(sent + i + 1)
			o.Side = itch.Buy
			mp.Append(o.Bytes())
		}
		if _, err := h.pub.Write(mp.Bytes()); err != nil {
			t.Fatal(err)
		}
		seq += uint64(n)
		sent += n
		if sent%128 == 0 {
			time.Sleep(time.Millisecond)
		}
	}
}

// publishFlows streams count GOOGL add-orders across `flows` publisher
// sockets, one instrument per socket (locate = flow index), shares
// strictly increasing within each instrument — the multi-flow publisher
// shape the SO_REUSEPORT ingress is designed for: the kernel hash pins
// each instrument's flow to one lane socket.
func (h *chaosHarness) publishFlows(t *testing.T, flows, count, perDatagram int) {
	t.Helper()
	pubs := make([]*net.UDPConn, flows)
	for i := range pubs {
		pub, err := net.DialUDP("udp", nil, h.sw.Addr())
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { pub.Close() })
		pubs[i] = pub
	}
	shares := make([]uint32, flows)
	seqs := make([]uint64, flows)
	sent, f := 0, 0
	for sent < count {
		var mp itch.MoldPacket
		mp.Header.SetSession("INGRESS")
		mp.Header.Sequence = seqs[f] + 1
		n := perDatagram
		if count-sent < n {
			n = count - sent
		}
		for i := 0; i < n; i++ {
			var o itch.AddOrder
			o.SetStock("GOOGL")
			o.StockLocate = uint16(f)
			shares[f]++
			o.Shares = shares[f]
			o.Side = itch.Buy
			mp.Append(o.Bytes())
		}
		if _, err := pubs[f].Write(mp.Bytes()); err != nil {
			t.Fatal(err)
		}
		seqs[f] += uint64(n)
		sent += n
		f = (f + 1) % flows
		if sent%128 == 0 {
			time.Sleep(time.Millisecond)
		}
	}
}

// checkInstrumentOrder asserts per-instrument delivery order: within
// every stock locate, the delivered shares values must be strictly
// increasing — any cross-lane reordering inside one instrument would
// surface here as a decrease (the publisher emits them increasing).
// Callers hold h.mu.
func (h *chaosHarness) checkInstrumentOrder(t *testing.T) {
	t.Helper()
	for loc, shares := range h.locShares {
		for i := 1; i < len(shares); i++ {
			if shares[i] <= shares[i-1] {
				t.Fatalf("instrument %d order violated: shares %d delivered after %d",
					loc, shares[i], shares[i-1])
			}
		}
	}
}

// stableMatched waits for the switch's matched counter to stop moving and
// returns it: the ground truth of how many messages entered the egress
// stream (ingress faults legitimately shrink it).
func (h *chaosHarness) stableMatched(t *testing.T) uint64 {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	last := h.sw.stats.Matched.Load()
	stableSince := time.Now()
	for time.Now().Before(deadline) {
		time.Sleep(25 * time.Millisecond)
		cur := h.sw.stats.Matched.Load()
		if cur != last {
			last, stableSince = cur, time.Now()
			continue
		}
		if time.Since(stableSince) > 300*time.Millisecond {
			return cur
		}
	}
	t.Fatal("matched counter never stabilized")
	return 0
}

// TestChaosRecoveryFullStream is the headline chaos scenario: seeded
// drop + duplication + reordering on both directions of the dataplane
// sockets, and the receiver still surfaces 100% of the matched messages,
// in order, with no gap declared lost. It runs single-lane and sharded
// (4 workers): the multi-worker dataplane adds cross-lane egress
// reordering on top of the injected faults, and delivery must still be
// complete and in sequence order.
func TestChaosRecoveryFullStream(t *testing.T) {
	for _, workers := range []int{1, 4} {
		t.Run(fmt.Sprintf("workers-%d", workers), func(t *testing.T) {
			total := 3000
			if testing.Short() {
				total = 600
			}
			plan := faults.Plan{Seed: 11, Drop: 0.01, Duplicate: 0.005, Reorder: 0.01}
			h := startChaosWorkers(t, plan, 0 /* default store */, 15*time.Millisecond, workers)
			h.publish(t, total, 4)

			matched := h.stableMatched(t)
			if matched == 0 {
				t.Fatal("nothing matched")
			}
			deadline := time.Now().Add(20 * time.Second)
			for h.rcv.stats.Delivered.Load() < matched && time.Now().Before(deadline) {
				time.Sleep(10 * time.Millisecond)
			}

			h.mu.Lock()
			defer h.mu.Unlock()
			if uint64(len(h.seqs)) != matched {
				t.Fatalf("delivered %d of %d matched messages (gaps lost: %v)", len(h.seqs), matched, h.gaps)
			}
			for i, s := range h.seqs {
				if s != uint64(i+1) {
					t.Fatalf("delivery %d has sequence %d: stream not dense/in-order", i, s)
				}
			}
			if len(h.gaps) != 0 {
				t.Fatalf("gaps declared lost despite full store: %v", h.gaps)
			}
			if h.rcv.stats.Recovered.Load() == 0 && h.sw.stats.RetxRequests.Load() == 0 {
				t.Fatal("chaos plan injected no recoverable loss; test is vacuous")
			}
		})
	}
}

// TestChaosIngressModes runs the recovery scenario across the ingress
// architectures — SO_REUSEPORT with a multi-flow publisher, the
// single-flow re-shard fallback, and the non-Linux stub fallback — at 1
// and 4 workers. Faults are injected on the switch's send side only, so
// the assertions are exact: every published message is matched,
// delivered in dense egress order with no gap declared lost, and within
// every instrument delivery preserves publish order (zero cross-lane
// ordering violations).
func TestChaosIngressModes(t *testing.T) {
	cases := []struct {
		name  string
		mode  IngressMode
		flows int // publisher sockets; 0 = one socket, mixed-locate feed
		stub  bool
	}{
		{"reuseport-multiflow", IngressReusePort, 8, false},
		{"reshard-singleflow", IngressReusePortReshard, 0, false},
		{"stub-fallback", IngressReusePort, 0, true},
	}
	for _, tc := range cases {
		for _, workers := range []int{1, 4} {
			t.Run(fmt.Sprintf("%s/workers-%d", tc.name, workers), func(t *testing.T) {
				if tc.stub {
					forceStubFallback(t)
				} else if !ReusePortAvailable() {
					t.Skip("SO_REUSEPORT unavailable on this platform")
				}
				total := 3000
				if testing.Short() {
					total = 600
				}
				plan := faults.Plan{Seed: 31, Drop: 0.01, Duplicate: 0.005, Reorder: 0.01}
				h := startChaosMode(t, plan, true /* egress only */, 0, 15*time.Millisecond, workers, tc.mode)
				if tc.stub && h.sw.IngressMode() != IngressShared {
					t.Fatalf("stub fallback ran mode %v, want shared", h.sw.IngressMode())
				}
				if tc.flows > 0 {
					h.publishFlows(t, tc.flows, total, 4)
				} else {
					h.publish(t, total, 4)
				}

				matched := h.stableMatched(t)
				// Ingress is fault-free in this matrix: the switch must
				// have evaluated and matched every published message.
				if matched != uint64(total) {
					t.Fatalf("matched %d of %d published messages on a clean ingress", matched, total)
				}
				deadline := time.Now().Add(20 * time.Second)
				for h.rcv.stats.Delivered.Load() < matched && time.Now().Before(deadline) {
					time.Sleep(10 * time.Millisecond)
				}

				h.mu.Lock()
				defer h.mu.Unlock()
				if uint64(len(h.seqs)) != matched {
					t.Fatalf("delivered %d of %d matched messages (gaps lost: %v)", len(h.seqs), matched, h.gaps)
				}
				for i, s := range h.seqs {
					if s != uint64(i+1) {
						t.Fatalf("delivery %d has sequence %d: stream not dense/in-order", i, s)
					}
				}
				if len(h.gaps) != 0 {
					t.Fatalf("gaps declared lost despite full store: %v", h.gaps)
				}
				h.checkInstrumentOrder(t)
				resharded := h.sw.stats.Resharded.Load()
				if tc.mode == IngressReusePortReshard && !tc.stub && workers > 1 && resharded == 0 {
					t.Fatal("single-flow reshard run moved nothing lane-to-lane")
				}
				if (tc.mode == IngressReusePort || tc.stub || workers == 1) && resharded != 0 {
					t.Fatalf("unexpected re-shard traffic: %d", resharded)
				}
				if h.rcv.stats.Recovered.Load() == 0 && h.sw.stats.RetxRequests.Load() == 0 {
					t.Fatal("chaos plan injected no recoverable loss; test is vacuous")
				}
			})
		}
	}
}

// TestChaosAgedOutStoreReportsGapLost: with a tiny retransmission store
// and heavy loss, the receiver must not hang — unrecoverable ranges are
// reported as explicit gap-lost events and delivery continues in order
// past them, with delivered + lost covering the whole egress stream.
func TestChaosAgedOutStoreReportsGapLost(t *testing.T) {
	total := 1200
	if testing.Short() {
		total = 400
	}
	plan := faults.Plan{Seed: 23, Drop: 0.30}
	h := startChaos(t, plan, 16 /* tiny store */, 15*time.Millisecond)
	h.publish(t, total, 8)

	matched := h.stableMatched(t)
	deadline := time.Now().Add(20 * time.Second)
	for h.rcv.NextSeq() <= matched && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if h.rcv.NextSeq() <= matched {
		t.Fatalf("receiver hung at seq %d of %d", h.rcv.NextSeq(), matched)
	}

	h.mu.Lock()
	defer h.mu.Unlock()
	lost := h.rcv.stats.GapsLost.Load()
	delivered := h.rcv.stats.Delivered.Load()
	if lost == 0 {
		t.Fatal("no gap-lost events despite aged-out store")
	}
	if delivered+lost != matched {
		t.Fatalf("delivered %d + lost %d != matched %d", delivered, lost, matched)
	}
	for i := 1; i < len(h.seqs); i++ {
		if h.seqs[i] <= h.seqs[i-1] {
			t.Fatalf("delivery order violated: %d after %d", h.seqs[i], h.seqs[i-1])
		}
	}
}

// TestReceiverEndOfSession: closing the switch announces end-of-session
// and the receiver's Run returns cleanly once the stream is drained.
func TestReceiverEndOfSession(t *testing.T) {
	h := startChaos(t, faults.Plan{}, 0, 15*time.Millisecond)
	h.publish(t, 10, 2)

	deadline := time.Now().Add(5 * time.Second)
	for h.rcv.stats.Delivered.Load() < 10 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if got := h.rcv.stats.Delivered.Load(); got != 10 {
		t.Fatalf("delivered %d before close", got)
	}
	if err := h.sw.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-h.runCh:
		if err != nil {
			t.Fatalf("receiver Run: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("receiver did not terminate on end-of-session")
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if !h.eos {
		t.Fatal("OnEndOfSession not invoked")
	}
	if len(h.gaps) != 0 {
		t.Fatalf("unexpected gaps: %v", h.gaps)
	}
}
