package dataplane

import (
	"context"
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"camus/internal/itch"
	"camus/internal/telemetry"
)

// IngressMode selects how ingress datagrams reach the processing lanes.
//
// The paper's ASIC ingests at line rate because every port has its own
// ingress pipeline; the software switch mirrors that with per-lane
// SO_REUSEPORT sockets, so the measured (not derived) throughput scales
// with lanes instead of serializing behind one reader goroutine.
type IngressMode int

const (
	// IngressAuto resolves to IngressShared — the portable, compatible
	// default: one ingress socket drained by one reader.
	IngressAuto IngressMode = iota

	// IngressShared is the classic path: a single ingress socket; with
	// Config.Workers > 1 one reader goroutine fans datagrams out to the
	// shard lanes keyed by the first add-order's stock locate.
	IngressShared

	// IngressReusePort gives every lane its own SO_REUSEPORT socket and
	// read loop; each lane processes exactly what the kernel's flow hash
	// delivers to its socket, with no software shard step at all. The
	// shard key is therefore the publisher's flow: per-instrument
	// ordering is preserved when the publisher keeps each instrument on
	// one flow (fanning out across source ports per instrument), which
	// is the natural way to feed a multi-lane switch. Linux only; other
	// platforms fall back to IngressShared.
	IngressReusePort

	// IngressReusePortReshard also gives every lane its own SO_REUSEPORT
	// socket, but adds a software re-shard hop: each reader keys every
	// datagram by its first add-order's stock locate and hands datagrams
	// owned by another lane over a FIFO channel to that lane's
	// processor. This is the correctness fallback for feeds the kernel
	// cannot spread meaningfully (a single-flow publisher lands entirely
	// on one socket): reads stay on one lane, but processing still
	// parallelizes across all lanes and per-instrument ordering is
	// preserved for any feed. Linux only; other platforms fall back to
	// IngressShared.
	IngressReusePortReshard
)

// reuseportAvailable gates the SO_REUSEPORT ingress modes; it is a
// variable (initialized from the build-tagged reuseportOS constant) so
// tests can force the non-Linux fallback path on any platform.
var reuseportAvailable = reuseportOS

// ParseIngressMode parses the flag spelling of an ingress mode:
// "auto", "shared", "reuseport", or "reshard".
func ParseIngressMode(s string) (IngressMode, error) {
	switch s {
	case "", "auto":
		return IngressAuto, nil
	case "shared":
		return IngressShared, nil
	case "reuseport":
		return IngressReusePort, nil
	case "reshard", "reuseport-reshard":
		return IngressReusePortReshard, nil
	}
	return IngressAuto, fmt.Errorf("dataplane: unknown ingress mode %q (want auto, shared, reuseport, reshard)", s)
}

func (m IngressMode) String() string {
	switch m {
	case IngressShared:
		return "shared"
	case IngressReusePort:
		return "reuseport"
	case IngressReusePortReshard:
		return "reshard"
	}
	return "auto"
}

// ReusePortAvailable reports whether this build and platform can bind
// SO_REUSEPORT lane sockets (false forces the shared-socket fallback).
func ReusePortAvailable() bool { return reuseportAvailable }

// ResolveIngressMode maps a configured mode to the one a switch will
// actually run: Auto means Shared, and the reuseport modes degrade to
// Shared where SO_REUSEPORT is unavailable (non-Linux builds). Callers
// that pre-partition traffic per lane (replay experiments) use this to
// learn the effective lane layout before Listen.
func ResolveIngressMode(m IngressMode) IngressMode {
	if m == IngressAuto {
		return IngressShared
	}
	if m != IngressShared && !reuseportAvailable {
		return IngressShared
	}
	return m
}

// lane is one ingress/processing path of the switch. In the reuseport
// modes it owns a socket bound to the shared ingress address; in shared
// mode every lane's conn aliases the one ingress socket (used for
// egress writes). Busy-time counters are split so throughput experiments
// can attribute cost per stage per lane, and the counters are registered
// per lane (label lane="N") when telemetry is attached.
type lane struct {
	id   int
	conn Conn
	ch   chan *dgram // processor inbox; nil when the lane processes inline
	st   *procState

	busyRead     atomic.Int64 // ns inside socket read calls on this lane
	busyDispatch atomic.Int64 // ns computing shard keys + enqueueing handoffs
	busyStall    atomic.Int64 // ns blocked on a full lane inbox (backpressure)
	busyProc     atomic.Int64 // ns evaluating and forwarding datagrams

	datagrams   telemetry.Counter // ingress datagrams that arrived on this lane
	resharedIn  telemetry.Counter // datagrams received over the re-shard hop
	resharedOut telemetry.Counter // datagrams read here but owned by another lane
}

// register adopts the lane's counters into reg as per-lane series.
func (l *lane) register(reg *telemetry.Registry) {
	lb := telemetry.L("lane", strconv.Itoa(l.id))
	reg.RegisterCounter("camus_dataplane_ingress_datagrams_total", &l.datagrams, lb)
	reg.RegisterCounter("camus_dataplane_ingress_resharded_in_total", &l.resharedIn, lb)
	reg.RegisterCounter("camus_dataplane_ingress_resharded_out_total", &l.resharedOut, lb)
	reg.CounterFunc("camus_dataplane_ingress_read_seconds_total", func() float64 {
		return float64(l.busyRead.Load()+l.busyDispatch.Load()) / 1e9
	}, lb)
	reg.CounterFunc("camus_dataplane_ingress_proc_seconds_total", func() float64 {
		return float64(l.busyProc.Load()) / 1e9
	}, lb)
}

// LaneStat is one lane's ingress accounting, for throughput experiments
// and operational introspection. Nanosecond fields are cumulative busy
// time; on a saturated replay they decompose the lane's wall clock into
// stages (read, shard+handoff, backpressure stall, processing).
type LaneStat struct {
	Lane        int
	Datagrams   uint64 // ingress datagrams that arrived on this lane
	ResharedIn  uint64 // datagrams received from other lanes' readers
	ResharedOut uint64 // datagrams this lane's reader handed elsewhere
	ReadNs      int64  // socket read busy time
	DispatchNs  int64  // shard key + enqueue busy time (stalls excluded)
	StallNs     int64  // time blocked on full lane inboxes
	ProcNs      int64  // processing busy time
}

// LaneStats snapshots every lane's counters. In shared mode the reader
// goroutine's read/dispatch/stall time is reported on the Switch level
// (BusyNs), not on any lane.
func (sw *Switch) LaneStats() []LaneStat {
	out := make([]LaneStat, len(sw.lanes))
	for i, l := range sw.lanes {
		out[i] = LaneStat{
			Lane:        l.id,
			Datagrams:   l.datagrams.Load(),
			ResharedIn:  l.resharedIn.Load(),
			ResharedOut: l.resharedOut.Load(),
			ReadNs:      l.busyRead.Load(),
			DispatchNs:  l.busyDispatch.Load(),
			StallNs:     l.busyStall.Load(),
			ProcNs:      l.busyProc.Load(),
		}
	}
	return out
}

// IngressMode reports the mode the switch actually runs (after the
// Auto resolution and any platform fallback).
func (sw *Switch) IngressMode() IngressMode { return sw.mode }

// dgramPool is a bounded free list of ingress buffers. Unlike sync.Pool
// it is immune to GC clearing — once the in-flight working set is
// allocated, the steady state recycles the same buffers forever, which
// is what keeps multi-worker allocs/op at ~0 over long runs. Capacity is
// sized to the maximum number of datagrams in flight (every lane inbox
// full plus every reader's batch), so put never drops in practice.
type dgramPool struct {
	free chan *dgram
	size int
}

func newDgramPool(capacity, bufSize int) *dgramPool {
	return &dgramPool{free: make(chan *dgram, capacity), size: bufSize}
}

//camus:hotpath
func (p *dgramPool) get() *dgram {
	select {
	case d := <-p.free:
		return d
	default:
		//camus:alloc-ok pool miss grows the working set once; the steady state recycles
		return &dgram{buf: make([]byte, p.size)}
	}
}

//camus:hotpath
func (p *dgramPool) put(d *dgram) {
	select {
	case p.free <- d:
	default:
	}
}

// poolCapacity is the maximum number of pooled datagrams in flight for
// the sharded paths: every lane inbox full, plus one read batch per
// reader, plus one datagram in each processor's hands.
func (sw *Switch) poolCapacity() int {
	return sw.workers*shardQueueDepth + sw.workers*sw.batch + sw.workers
}

// runLaneInline reads the lane's socket and processes every datagram in
// place — the per-lane mirror of the classic single-reader loop. It is
// the whole ingress path in IngressReusePort mode (the kernel's flow
// hash is the shard step) and the workers=1 shared loop.
func (sw *Switch) runLaneInline(ctx context.Context, l *lane) error {
	if br := newBatchReader(l.conn, sw.batch); br != nil {
		bufs := make([][]byte, sw.batch)
		sizes := make([]int, sw.batch)
		for i := range bufs {
			bufs[i] = make([]byte, sw.readBuf)
		}
		for {
			rs := time.Now()
			n, err := br.ReadBatch(bufs, sizes)
			l.busyRead.Add(int64(time.Since(rs)))
			for i := 0; i < n; i++ {
				sw.stats.Datagrams.Add(1)
				l.datagrams.Add(1)
				sw.timeProcess(l, bufs[i][:sizes[i]])
			}
			if err != nil {
				return sw.readErr(ctx, err)
			}
		}
	}
	buf := make([]byte, sw.readBuf)
	for {
		rs := time.Now()
		n, _, err := l.conn.ReadFromUDP(buf)
		l.busyRead.Add(int64(time.Since(rs)))
		if err != nil {
			return sw.readErr(ctx, err)
		}
		sw.stats.Datagrams.Add(1)
		l.datagrams.Add(1)
		sw.timeProcess(l, buf[:n])
	}
}

// handoff enqueues a pooled datagram into owner's inbox, attributing the
// uncontended enqueue to dispatch time and any blocking on a full inbox
// to stall time (backpressure from a saturated lane is not reader work).
//
//camus:hotpath
func handoff(owner *lane, d *dgram, start time.Time, dispatch, stall *atomic.Int64) {
	select {
	case owner.ch <- d:
		dispatch.Add(int64(time.Since(start)))
	default:
		mid := time.Now()
		dispatch.Add(int64(mid.Sub(start)))
		owner.ch <- d
		stall.Add(int64(time.Since(mid)))
	}
}

// runLaneReader is one reuseport-reshard reader: it drains the lane's
// own socket and re-shards every datagram by stock locate, handing each
// to its owning lane's processor. All datagrams of one flow are read
// here in kernel arrival order and channel sends from one goroutine are
// FIFO, so per-instrument order survives the hop for any feed in which
// an instrument rides a single flow — including the degenerate
// single-flow feed, where this lane reads everything.
func (sw *Switch) runLaneReader(ctx context.Context, l *lane, pool *dgramPool) error {
	dispatch := func(d *dgram) {
		ds := time.Now()
		sw.stats.Datagrams.Add(1)
		l.datagrams.Add(1)
		owner := l
		if loc, ok := itch.FirstAddOrderLocate(d.buf[:d.n]); ok {
			owner = sw.lanes[int(loc)%len(sw.lanes)]
		}
		if owner != l {
			l.resharedOut.Add(1)
			sw.stats.Resharded.Add(1)
		}
		d.src = int32(l.id)
		handoff(owner, d, ds, &l.busyDispatch, &l.busyStall)
	}
	if br := newBatchReader(l.conn, sw.batch); br != nil {
		ds := make([]*dgram, sw.batch)
		bufs := make([][]byte, sw.batch)
		sizes := make([]int, sw.batch)
		for {
			for i := range ds {
				ds[i] = pool.get()
				bufs[i] = ds[i].buf
			}
			rs := time.Now()
			n, rerr := br.ReadBatch(bufs, sizes)
			l.busyRead.Add(int64(time.Since(rs)))
			for i := 0; i < n; i++ {
				ds[i].n = sizes[i]
				dispatch(ds[i])
			}
			for i := n; i < len(ds); i++ {
				pool.put(ds[i])
			}
			if rerr != nil {
				return sw.readErr(ctx, rerr)
			}
		}
	}
	for {
		d := pool.get()
		rs := time.Now()
		var rerr error
		d.n, _, rerr = l.conn.ReadFromUDP(d.buf)
		l.busyRead.Add(int64(time.Since(rs)))
		if rerr != nil {
			pool.put(d)
			return sw.readErr(ctx, rerr)
		}
		dispatch(d)
	}
}

// runReusePort runs the per-lane ingress paths: every lane owns its own
// SO_REUSEPORT socket. Without reshard each lane reads and processes
// inline (kernel flow hash = shard); with reshard each lane runs a
// reader plus a processor, connected lane-to-lane by FIFO inboxes keyed
// on stock locate. Returns the first terminal read error.
func (sw *Switch) runReusePort(ctx context.Context, reshard bool) error {
	var errMu sync.Mutex
	var firstErr error
	record := func(err error) {
		if err == nil {
			return
		}
		errMu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		errMu.Unlock()
	}

	if !reshard {
		var wg sync.WaitGroup
		for _, l := range sw.lanes {
			wg.Add(1)
			go func(l *lane) {
				defer wg.Done()
				// An inline lane has no inbox to drain, but a panic must
				// still surface through Run (and stop the other lanes)
				// rather than kill the process.
				defer func() {
					if r := recover(); r != nil {
						record(fmt.Errorf("dataplane: lane %d processor failed: %v", l.id, r))
						sw.closeConns()
					}
				}()
				record(sw.runLaneInline(ctx, l))
			}(l)
		}
		wg.Wait()
		return firstErr
	}

	pool := newDgramPool(sw.poolCapacity(), sw.readBuf)
	for _, l := range sw.lanes {
		l.ch = make(chan *dgram, shardQueueDepth)
	}
	var procWG sync.WaitGroup
	for _, l := range sw.lanes {
		procWG.Add(1)
		go func(l *lane) {
			defer procWG.Done()
			defer sw.recoverLane(l, record, pool)
			for d := range l.ch {
				if int(d.src) != l.id {
					l.resharedIn.Add(1)
				}
				sw.timeProcess(l, d.buf[:d.n])
				pool.put(d)
			}
		}(l)
	}
	var readWG sync.WaitGroup
	for _, l := range sw.lanes {
		readWG.Add(1)
		go func(l *lane) {
			defer readWG.Done()
			record(sw.runLaneReader(ctx, l, pool))
		}(l)
	}
	// Inboxes close only after every reader has exited (any reader may
	// still be handing off to any lane until then); processors drain the
	// residue and stop.
	readWG.Wait()
	for _, l := range sw.lanes {
		close(l.ch)
	}
	procWG.Wait()
	return firstErr
}
