//go:build race

package dataplane

// raceEnabled reports whether the race detector is compiled in;
// allocation-count assertions are skipped under it because the detector
// instruments the hot path with its own allocations.
const raceEnabled = true
