package dataplane

import "sync/atomic"

// sharedPoolCapacity bounds the free list of recycled group bodies. Like
// the ingress dgramPool this is a plain channel, not a sync.Pool: the
// working set survives GC cycles, so steady-state allocs stay at zero.
// Buffers beyond the bound are simply dropped to the GC.
const sharedPoolCapacity = 1024

// sharedBuf is one multicast group's encoded egress body, shared by
// every member port of the group: the sendmmsg scatter path pairs it
// with per-port headers, the fallback path patches the header region
// ([0:MoldHeaderLen)) in place between writes, and each member's
// retransmission ring retains per-message views into the body region.
//
// Lifetime is reference counted: the encoding lane holds one reference
// for the duration of the datagram's sends, and every retransmission
// ring slot that aliases the body holds one more. The buffer returns to
// the pool when the last reference drops — which is when no ring can
// still serve bytes from it, so recycling can never corrupt a pending
// retransmission.
type sharedBuf struct {
	b    []byte
	refs atomic.Int32
	pool *sharedPool
}

// refGroup takes n references at once — one per ring slot a member port
// is about to fill — so the hot path pays a single atomic per (port,
// body) instead of one per message.
func (sb *sharedBuf) refGroup(n int) { sb.refs.Add(int32(n)) }

// unref drops one reference, recycling the buffer on the last drop.
func (sb *sharedBuf) unref() {
	if sb.refs.Add(-1) == 0 {
		sb.pool.put(sb)
	}
}

// unrefN drops n references at once — the counterpart of refGroup when a
// ring evicts a whole batch of slots that alias the same body.
func (sb *sharedBuf) unrefN(n int32) {
	if sb.refs.Add(-n) == 0 {
		sb.pool.put(sb)
	}
}

// evictAcc coalesces reference drops for bodies evicted from many
// retransmission rings during one datagram. Consecutive evictions almost
// always retire the same body (each member of a group holds views of the
// same earlier bodies in the same ring order), so the run-length fast
// path collapses them into one atomic. Delaying the drop is safe: it
// only postpones the body's return to the free list.
type evictAcc struct {
	owner *sharedBuf
	n     int32
}

func (a *evictAcc) add(o *sharedBuf) {
	if o == a.owner {
		a.n++
		return
	}
	if a.owner != nil {
		a.owner.unrefN(a.n)
	}
	a.owner, a.n = o, 1
}

func (a *evictAcc) flush() {
	if a.owner != nil {
		a.owner.unrefN(a.n)
		a.owner, a.n = nil, 0
	}
}

// sharedPool is the bounded free list sharedBufs circulate through.
type sharedPool struct {
	free chan *sharedBuf
}

func newSharedPool(capacity int) *sharedPool {
	return &sharedPool{free: make(chan *sharedBuf, capacity)}
}

// get returns a buffer with capacity for at least need bytes and one
// reference (the caller's). Capacities are rounded up to a power-of-two
// size class (min 256 bytes): group bodies vary with how many of a
// datagram's messages hit the group, and without the rounding a small
// recycled body forces a fresh allocation whenever a larger need comes
// off the free list — visible as steady-state allocs at high fanout.
//
//camus:hotpath
func (p *sharedPool) get(need int) *sharedBuf {
	select {
	case sb := <-p.free:
		sb.refs.Store(1)
		if cap(sb.b) < need {
			sb.b = make([]byte, 0, bodyClass(need)) //camus:alloc-ok pool refill when a recycled body is too small; size classes make this rare
		}
		return sb
	default:
	}
	//camus:alloc-ok pool miss grows the working set once; the steady state recycles
	sb := &sharedBuf{b: make([]byte, 0, bodyClass(need)), pool: p}
	sb.refs.Store(1)
	return sb
}

// bodyClass rounds need up to the next power of two, floored at 256.
func bodyClass(need int) int {
	c := 256
	for c < need {
		c <<= 1
	}
	return c
}

// put recycles a buffer, dropping it if the free list is full.
//
//camus:hotpath
func (p *sharedPool) put(sb *sharedBuf) {
	sb.b = sb.b[:0]
	select {
	case p.free <- sb:
	default:
	}
}
