// Package core ties the Camus system together: it is the in-network
// publish/subscribe engine of the paper's case study (Figure 6). A PubSub
// instance owns a message-format spec, compiles subscription sets, keeps a
// (simulated) switch programmed via the control plane, and processes
// MoldUDP64/ITCH datagrams into per-port deliveries.
package core

import (
	"context"
	"fmt"
	"time"

	"camus/internal/compiler"
	"camus/internal/controlplane"
	"camus/internal/itch"
	"camus/internal/pipeline"
	"camus/internal/spec"
	"camus/internal/telemetry"
)

// PubSub is a running Camus deployment on one switch.
type PubSub struct {
	spec *spec.Spec
	opts compiler.Options
	cfg  pipeline.Config
	tel  *telemetry.Telemetry

	sw  *pipeline.Switch
	ctl *controlplane.Controller
	ex  *itch.Extractor

	valBuf []uint64
}

// Config bundles the PubSub knobs; zero values select defaults.
type Config struct {
	Switch   pipeline.Config
	Compiler compiler.Options
	// Telemetry, when non-nil, is shared by every layer of the
	// deployment: the compiler reports compile durations, the control
	// plane records install spans, and the switch maintains its
	// hardware-style counters, all in one registry.
	Telemetry *telemetry.Telemetry
}

// NewPubSub creates a deployment for a message-format spec with an empty
// subscription set installed.
func NewPubSub(sp *spec.Spec, cfg Config) (*PubSub, error) {
	if cfg.Switch.Ports == 0 {
		cfg.Switch = pipeline.DefaultConfig()
	}
	if cfg.Telemetry != nil {
		cfg.Switch.Telemetry = cfg.Telemetry.Reg()
		cfg.Compiler.Telemetry = cfg.Telemetry.Reg()
	}
	ps := &PubSub{spec: sp, opts: cfg.Compiler, cfg: cfg.Switch, tel: cfg.Telemetry}
	prog, err := compiler.CompileSource(sp, "", cfg.Compiler)
	if err != nil {
		return nil, err
	}
	ps.sw, err = pipeline.New(prog, cfg.Switch)
	if err != nil {
		return nil, err
	}
	ps.ctl = controlplane.NewController(ps.sw)
	ps.ctl.SetTelemetry(cfg.Telemetry)
	ps.ex, err = itch.NewExtractor(prog)
	if err != nil {
		return nil, err
	}
	return ps, nil
}

// Telemetry returns the deployment's shared telemetry (nil when the
// deployment is uninstrumented).
func (ps *PubSub) Telemetry() *telemetry.Telemetry { return ps.tel }

// Snapshot captures every metric and recent control-plane span of the
// deployment in the unified telemetry schema.
func (ps *PubSub) Snapshot() telemetry.Snapshot { return ps.tel.Snapshot() }

// SetSubscriptions compiles a new subscription set and installs it
// incrementally, returning the control-plane delta.
func (ps *PubSub) SetSubscriptions(src string) (controlplane.Delta, error) {
	return ps.SetSubscriptionsContext(context.Background(), src)
}

// SetSubscriptionsContext is SetSubscriptions with a cancelable context:
// the install stops retrying and rolls back when ctx is done, and the
// recorded span carries the context deadline.
func (ps *PubSub) SetSubscriptionsContext(ctx context.Context, src string) (controlplane.Delta, error) {
	prog, err := compiler.CompileSource(ps.spec, src, ps.opts)
	if err != nil {
		return controlplane.Delta{}, fmt.Errorf("camus: compile: %w", err)
	}
	delta, err := ps.ctl.Update(ctx, prog)
	if err != nil {
		return controlplane.Delta{}, fmt.Errorf("camus: install: %w", err)
	}
	ex, err := itch.NewExtractor(prog)
	if err != nil {
		return controlplane.Delta{}, err
	}
	ps.ex = ex
	return delta, nil
}

// Program returns the currently installed compiled program.
func (ps *PubSub) Program() *compiler.Program { return ps.ctl.Program() }

// Switch exposes the underlying device model.
func (ps *PubSub) Switch() *pipeline.Switch { return ps.sw }

// Delivery is one message's forwarding outcome.
type Delivery struct {
	Order itch.AddOrder
	Ports []int
	Group int // multicast group, or -1
}

// ProcessOrder runs a single add-order message through the switch.
func (ps *PubSub) ProcessOrder(o *itch.AddOrder, now time.Duration) pipeline.Result {
	ps.valBuf = ps.ex.Values(o, ps.valBuf)
	return ps.sw.Process(ps.valBuf, now)
}

// ProcessDatagram decodes a MoldUDP64 payload and returns the deliveries
// for every add-order message that matched at least one subscription.
func (ps *PubSub) ProcessDatagram(payload []byte, now time.Duration) ([]Delivery, error) {
	var out []Delivery
	err := itch.ForEachAddOrder(payload, func(o *itch.AddOrder) {
		res := ps.ProcessOrder(o, now)
		if !res.Dropped {
			out = append(out, Delivery{Order: *o, Ports: res.Ports, Group: res.Group})
		}
	})
	if err != nil {
		return nil, fmt.Errorf("camus: datagram: %w", err)
	}
	return out, nil
}
