// Package core ties the Camus system together: it is the in-network
// publish/subscribe engine of the paper's case study (Figure 6). A PubSub
// instance owns a message-format spec, compiles subscription sets, keeps a
// (simulated) switch programmed via the control plane, and processes
// MoldUDP64/ITCH datagrams into per-port deliveries.
package core

import (
	"context"
	"fmt"
	"time"

	"camus/internal/compiler"
	"camus/internal/controlplane"
	"camus/internal/itch"
	"camus/internal/pipeline"
	"camus/internal/spec"
	"camus/internal/telemetry"
)

// PubSub is a running Camus deployment on one switch.
type PubSub struct {
	spec *spec.Spec
	opts compiler.Options
	cfg  pipeline.Config
	tel  *telemetry.Telemetry

	sw  *pipeline.Switch
	ctl *controlplane.Controller
	ex  *itch.Extractor

	valBuf []uint64
}

// Config bundles the PubSub knobs; zero values select defaults.
type Config struct {
	Switch   pipeline.Config
	Compiler compiler.Options
	// Telemetry, when non-nil, is shared by every layer of the
	// deployment: the compiler reports compile durations, the control
	// plane records install spans, and the switch maintains its
	// hardware-style counters, all in one registry.
	Telemetry *telemetry.Telemetry
}

// NewPubSub creates a deployment for a message-format spec with an empty
// subscription set installed.
func NewPubSub(sp *spec.Spec, cfg Config) (*PubSub, error) {
	if cfg.Switch.Ports == 0 {
		// Default the pipeline shape but keep any state-engine knobs the
		// caller did set (lane count, capacity, mutex baseline).
		st := cfg.Switch
		cfg.Switch = pipeline.DefaultConfig()
		cfg.Switch.StateLanes = st.StateLanes
		cfg.Switch.StateCapacity = st.StateCapacity
		cfg.Switch.StateMutex = st.StateMutex
		cfg.Switch.StateAffine = st.StateAffine
	}
	if cfg.Telemetry != nil {
		cfg.Switch.Telemetry = cfg.Telemetry.Reg()
		cfg.Compiler.Telemetry = cfg.Telemetry.Reg()
	}
	ps := &PubSub{spec: sp, opts: cfg.Compiler, cfg: cfg.Switch, tel: cfg.Telemetry}
	prog, err := compiler.CompileSource(sp, "", cfg.Compiler)
	if err != nil {
		return nil, err
	}
	ps.sw, err = pipeline.New(prog, cfg.Switch)
	if err != nil {
		return nil, err
	}
	ps.ctl = controlplane.NewController(ps.sw)
	ps.ctl.SetTelemetry(cfg.Telemetry)
	ps.ex, err = itch.NewExtractor(prog)
	if err != nil {
		return nil, err
	}
	return ps, nil
}

// Telemetry returns the deployment's shared telemetry (nil when the
// deployment is uninstrumented).
func (ps *PubSub) Telemetry() *telemetry.Telemetry { return ps.tel }

// Snapshot captures every metric and recent control-plane span of the
// deployment in the unified telemetry schema.
func (ps *PubSub) Snapshot() telemetry.Snapshot { return ps.tel.Snapshot() }

// SetSubscriptions compiles a new subscription set and installs it
// incrementally, returning the control-plane delta.
func (ps *PubSub) SetSubscriptions(src string) (controlplane.Delta, error) {
	return ps.SetSubscriptionsContext(context.Background(), src)
}

// SetSubscriptionsContext is SetSubscriptions with a cancelable context:
// the install stops retrying and rolls back when ctx is done, and the
// recorded span carries the context deadline.
func (ps *PubSub) SetSubscriptionsContext(ctx context.Context, src string) (controlplane.Delta, error) {
	prog, err := compiler.CompileSource(ps.spec, src, ps.opts)
	if err != nil {
		return controlplane.Delta{}, fmt.Errorf("camus: compile: %w", err)
	}
	delta, err := ps.ctl.Update(ctx, prog)
	if err != nil {
		return controlplane.Delta{}, fmt.Errorf("camus: install: %w", err)
	}
	ex, err := itch.NewExtractor(prog)
	if err != nil {
		return controlplane.Delta{}, err
	}
	ps.ex = ex
	return delta, nil
}

// Program returns the currently installed compiled program.
func (ps *PubSub) Program() *compiler.Program { return ps.ctl.Program() }

// AdoptProgram resynchronizes the deployment with a program installed on
// the switch out of band — the fabric's epoch controller commits through
// its own per-member control plane, then adopts here so the extractor and
// the embedded controller's diff base match what the device runs. No
// device write happens; callers guarantee prog is what is installed.
func (ps *PubSub) AdoptProgram(prog *compiler.Program) error {
	ex, err := itch.NewExtractor(prog)
	if err != nil {
		return err
	}
	ps.ctl.Adopt(prog)
	ps.ex = ex
	return nil
}

// Switch exposes the underlying device model.
func (ps *PubSub) Switch() *pipeline.Switch { return ps.sw }

// Delivery is one message's forwarding outcome.
type Delivery struct {
	Order itch.AddOrder
	Ports []int
	Group int // multicast group, or -1
}

// ProcessOrder runs a single add-order message through the switch.
func (ps *PubSub) ProcessOrder(o *itch.AddOrder, now time.Duration) pipeline.Result {
	ps.valBuf = ps.ex.Values(o, ps.valBuf)
	return ps.sw.Process(ps.valBuf, now)
}

// Processor is a per-goroutine evaluation handle: it owns its value
// buffers, so any number of Processors may evaluate messages
// concurrently against the same PubSub (the sharded dataplane gives one
// to each worker). Zero allocation in steady state. Callers must
// serialize Begin/Add/Flush against SetSubscriptions (the dataplane does
// so with its install RWMutex); the pipeline itself is safe concurrently.
type Processor struct {
	ps   *PubSub
	lane int        // state lane this processor writes; see NewProcessorAt
	vals [][]uint64 // reused per-message value rows
	now  []time.Duration
	out  []pipeline.Result
	n    int
}

// NewProcessor returns a Processor bound to the deployment on state
// lane 0 (the single-worker deployment shape).
func (ps *PubSub) NewProcessor() *Processor { return ps.NewProcessorAt(0) }

// NewProcessorAt returns a Processor whose stateful register updates
// land on the given state lane. Each lane has a single writer: the
// caller must give every concurrently-flushing Processor its own lane
// index (the sharded dataplane uses its worker index). Reads still see
// all lanes, so lane assignment affects contention, not semantics.
func (ps *PubSub) NewProcessorAt(lane int) *Processor {
	ps.sw.State().EnsureLanes(lane + 1)
	return &Processor{ps: ps, lane: lane}
}

// ProcessOrder evaluates one message immediately (the unbatched path).
func (p *Processor) ProcessOrder(o *itch.AddOrder, now time.Duration) pipeline.Result {
	if len(p.vals) == 0 {
		p.vals = append(p.vals, nil)
	}
	p.vals[0] = p.ps.ex.Values(o, p.vals[0])
	return p.ps.sw.ProcessOn(p.lane, p.vals[0], now)
}

// Begin starts a new batch, discarding any un-flushed messages.
func (p *Processor) Begin() { p.n = 0 }

// Add extracts one message's field values into the pending batch.
//
//camus:hotpath
func (p *Processor) Add(o *itch.AddOrder) {
	if p.n < len(p.vals) {
		p.vals[p.n] = p.ps.ex.Values(o, p.vals[p.n])
	} else {
		p.vals = append(p.vals, p.ps.ex.Values(o, nil))
	}
	p.n++
}

// Pending returns the number of messages added since Begin.
func (p *Processor) Pending() int { return p.n }

// Flush runs the pending batch through the switch pipeline in one
// ProcessBatch call (the program pointer is loaded once for the whole
// batch) and returns one Result per added message, in Add order. The
// returned slice is reused by the next Flush.
//
//camus:hotpath
func (p *Processor) Flush(now time.Duration) []pipeline.Result {
	n := p.n
	if cap(p.now) < n {
		//camus:alloc-ok grows once to the high-water batch size, then reused
		p.now = make([]time.Duration, n)
		p.out = make([]pipeline.Result, n) //camus:alloc-ok grows once to the high-water batch size, then reused
	}
	nows, out := p.now[:n], p.out[:n]
	for i := range nows {
		nows[i] = now
	}
	p.ps.sw.ProcessBatchOn(p.lane, p.vals[:n], nows, out)
	p.n = 0
	return out
}

// ProcessDatagram decodes a MoldUDP64 payload and returns the deliveries
// for every add-order message that matched at least one subscription.
func (ps *PubSub) ProcessDatagram(payload []byte, now time.Duration) ([]Delivery, error) {
	var out []Delivery
	err := itch.ForEachAddOrder(payload, func(o *itch.AddOrder) {
		res := ps.ProcessOrder(o, now)
		if !res.Dropped {
			out = append(out, Delivery{Order: *o, Ports: res.Ports, Group: res.Group})
		}
	})
	if err != nil {
		return nil, fmt.Errorf("camus: datagram: %w", err)
	}
	return out, nil
}
