package core

import (
	"reflect"
	"testing"

	"camus/internal/compiler"
	"camus/internal/itch"
	"camus/internal/pipeline"
	"camus/internal/spec"
	"camus/internal/workload"
)

func newEngine(t *testing.T) *PubSub {
	t.Helper()
	ps, err := NewPubSub(spec.MustParse(workload.ITCHSpecSource), Config{})
	if err != nil {
		t.Fatal(err)
	}
	return ps
}

func TestNewPubSubStartsEmpty(t *testing.T) {
	ps := newEngine(t)
	if ps.Program() == nil || ps.Switch() == nil {
		t.Fatal("accessors nil")
	}
	if ps.Program().Stats.Rules != 0 {
		t.Fatalf("fresh engine has %d rules", ps.Program().Stats.Rules)
	}
	var o itch.AddOrder
	o.SetStock("ANY")
	if res := ps.ProcessOrder(&o, 0); !res.Dropped {
		t.Fatalf("empty engine should drop: %+v", res)
	}
}

func TestProcessDatagramDeliveries(t *testing.T) {
	ps := newEngine(t)
	if _, err := ps.SetSubscriptions("stock == GOOGL : fwd(1,2)\n"); err != nil {
		t.Fatal(err)
	}
	var mp itch.MoldPacket
	var a, b itch.AddOrder
	a.SetStock("GOOGL")
	b.SetStock("ORCL")
	mp.Append(a.Bytes())
	mp.Append(b.Bytes())
	mp.Append((&itch.SystemEvent{EventCode: 'O'}).Bytes()) // skipped

	ds, err := ps.ProcessDatagram(mp.Bytes(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(ds) != 1 {
		t.Fatalf("deliveries = %d, want 1", len(ds))
	}
	if !reflect.DeepEqual(ds[0].Ports, []int{1, 2}) || ds[0].Group < 0 {
		t.Fatalf("delivery = %+v", ds[0])
	}
	if ds[0].Order.StockSymbol() != "GOOGL" {
		t.Fatalf("delivered %q", ds[0].Order.StockSymbol())
	}
}

func TestProcessDatagramError(t *testing.T) {
	ps := newEngine(t)
	if _, err := ps.ProcessDatagram([]byte("short"), 0); err == nil {
		t.Fatal("malformed datagram should error")
	}
}

func TestSetSubscriptionsRejectsOversized(t *testing.T) {
	tiny := pipeline.DefaultConfig()
	tiny.SRAMPerStage = 4
	tiny.TCAMPerStage = 4
	tiny.Stages = 4
	ps, err := NewPubSub(spec.MustParse(workload.ITCHSpecSource), Config{Switch: tiny})
	if err != nil {
		t.Fatal(err)
	}
	big := workload.ITCHSubscriptionSource(workload.ITCHSubsConfig{
		Subscriptions: 500, Stocks: 100, Hosts: 8, PriceMax: 1000, PriceGrid: 1, Seed: 1,
	})
	if _, err := ps.SetSubscriptions(big); err == nil {
		t.Fatal("oversized set should be rejected")
	}
	// Engine still serves the previous (empty) program.
	var o itch.AddOrder
	o.SetStock("GOOGL")
	if res := ps.ProcessOrder(&o, 0); !res.Dropped {
		t.Fatalf("engine broken after failed update: %+v", res)
	}
}

func TestCompilerOptionsPropagate(t *testing.T) {
	ps, err := NewPubSub(spec.MustParse(workload.ITCHSpecSource), Config{
		Compiler: compiler.Options{DisableCompression: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	src := workload.ITCHSubscriptionSource(workload.ITCHSubsConfig{
		Subscriptions: 2000, Stocks: 20, Hosts: 16, PriceMax: 1000, PriceGrid: 10, Seed: 1,
	})
	if _, err := ps.SetSubscriptions(src); err != nil {
		t.Fatal(err)
	}
	for _, tab := range ps.Program().Tables {
		if tab.Codec != nil {
			t.Fatal("compression should be disabled via Config.Compiler")
		}
	}
}
