package itch

import (
	"fmt"

	"camus/internal/compiler"
)

// Extractor is the packet-parser stage of the switch for the ITCH
// application: it maps decoded add-order messages onto the field-value
// vector a compiled Camus program matches on. Field binding is by short
// field name (shares, stock, price, side, locate), mirroring how the
// generated P4 parser binds header fields to match keys.
type Extractor struct {
	prog    *compiler.Program
	binding []func(*AddOrder) uint64 // nil for state fields
}

// NewExtractor validates that every packet field in the program is an
// ITCH add-order field and builds the binding table.
func NewExtractor(prog *compiler.Program) (*Extractor, error) {
	e := &Extractor{prog: prog, binding: make([]func(*AddOrder) uint64, len(prog.Fields))}
	for i, f := range prog.Fields {
		if f.IsState {
			continue // filled by the switch's register stage
		}
		q, err := prog.Spec.LookupField(f.Name)
		if err != nil {
			return nil, err
		}
		switch q.Field {
		case "shares":
			e.binding[i] = func(m *AddOrder) uint64 { return uint64(m.Shares) }
		case "stock":
			e.binding[i] = func(m *AddOrder) uint64 { return m.StockValue() }
		case "price":
			e.binding[i] = func(m *AddOrder) uint64 { return uint64(m.Price) }
		case "side":
			e.binding[i] = func(m *AddOrder) uint64 { return uint64(m.Side) }
		case "locate":
			e.binding[i] = func(m *AddOrder) uint64 { return uint64(m.StockLocate) }
		case "order_ref":
			e.binding[i] = func(m *AddOrder) uint64 { return m.OrderRef }
		default:
			return nil, fmt.Errorf("itch: program field %q has no ITCH add-order binding", f.Name)
		}
	}
	return e, nil
}

// Values fills buf (reused across calls when capacity allows) with the
// field values for one message, in program field order.
//
//camus:hotpath
func (e *Extractor) Values(m *AddOrder, buf []uint64) []uint64 {
	if cap(buf) < len(e.binding) {
		buf = make([]uint64, len(e.binding)) //camus:alloc-ok grows once to the program's field count, then reused
	}
	buf = buf[:len(e.binding)]
	for i, f := range e.binding {
		if f != nil {
			buf[i] = f(m)
		} else {
			buf[i] = 0
		}
	}
	return buf
}
