package itch

import (
	"encoding/binary"
	"strings"
)

// MoldRequestLen is the fixed size of a MoldUDP64 retransmission request:
// 10-byte session, 64-bit first requested sequence number, 16-bit message
// count. Requests travel on the retransmission socket (never the
// downstream one), so the shared layout with the downstream header is
// unambiguous.
const MoldRequestLen = 20

// MoldRequest is the MoldUDP64 upstream retransmission request: "resend
// Count messages of Session starting at Sequence".
type MoldRequest struct {
	Session  [10]byte
	Sequence uint64
	Count    uint16
}

// SetSession writes a session identifier (ASCII, space-padded).
func (r *MoldRequest) SetSession(s string) {
	for i := 0; i < 10; i++ {
		if i < len(s) {
			r.Session[i] = s[i]
		} else {
			r.Session[i] = ' '
		}
	}
}

// SessionString returns the session identifier with padding trimmed.
func (r *MoldRequest) SessionString() string {
	return strings.TrimRight(string(r.Session[:]), " ")
}

// DecodeFromBytes parses a retransmission request.
func (r *MoldRequest) DecodeFromBytes(data []byte) error {
	if len(data) < MoldRequestLen {
		return ErrTruncated
	}
	copy(r.Session[:], data[0:10])
	r.Sequence = binary.BigEndian.Uint64(data[10:18])
	r.Count = binary.BigEndian.Uint16(data[18:20])
	return nil
}

// SerializeTo writes the request into b (MoldRequestLen bytes).
func (r *MoldRequest) SerializeTo(b []byte) {
	copy(b[0:10], r.Session[:])
	binary.BigEndian.PutUint64(b[10:18], r.Sequence)
	binary.BigEndian.PutUint16(b[18:20], r.Count)
}

// Bytes serializes the request into a fresh buffer.
func (r *MoldRequest) Bytes() []byte {
	b := make([]byte, MoldRequestLen)
	r.SerializeTo(b)
	return b
}
