package itch

import (
	"bytes"
	"testing"
	"testing/quick"

	"camus/internal/compiler"
	"camus/internal/spec"
)

func TestAddOrderRoundTrip(t *testing.T) {
	m := AddOrder{
		StockLocate:    7,
		TrackingNumber: 9,
		Timestamp:      0x0000_1234_5678_9abc & ((1 << 48) - 1),
		OrderRef:       0xdeadbeefcafef00d,
		Side:           Buy,
		Shares:         300,
		Price:          PriceToFixed(182.55),
	}
	m.SetStock("GOOGL")
	buf := m.Bytes()
	if len(buf) != AddOrderLen {
		t.Fatalf("wire length = %d", len(buf))
	}
	var d AddOrder
	if err := d.DecodeFromBytes(buf); err != nil {
		t.Fatal(err)
	}
	if d != m {
		t.Fatalf("round trip mismatch:\n%+v\n%+v", d, m)
	}
	if d.StockSymbol() != "GOOGL" {
		t.Fatalf("symbol = %q", d.StockSymbol())
	}
	if FixedToPrice(d.Price) != 182.55 {
		t.Fatalf("price = %v", FixedToPrice(d.Price))
	}
}

func TestAddOrderDecodeErrors(t *testing.T) {
	var d AddOrder
	if err := d.DecodeFromBytes(make([]byte, 10)); err != ErrTruncated {
		t.Fatalf("short: %v", err)
	}
	bad := make([]byte, AddOrderLen)
	bad[0] = 'X'
	if err := d.DecodeFromBytes(bad); err == nil {
		t.Fatal("wrong type should fail")
	}
}

func TestStockValueMatchesSpecEncoding(t *testing.T) {
	// The pipeline matches stock == GOOGL by encoding the symbol via the
	// spec; the wire extractor must produce the identical uint64.
	sp := spec.MustParse(`
header_type itch_add_order_t { fields { shares: 32; stock: 64; price: 32; } }
header itch_add_order_t add_order;
@query_field_exact(add_order.stock)
`)
	q, err := sp.LookupField("stock")
	if err != nil {
		t.Fatal(err)
	}
	want, err := spec.EncodeSymbol(q, "GOOGL")
	if err != nil {
		t.Fatal(err)
	}
	var m AddOrder
	m.SetStock("GOOGL")
	if got := m.StockValue(); got != want {
		t.Fatalf("wire encoding %#x != spec encoding %#x", got, want)
	}
}

func TestUint48RoundTrip(t *testing.T) {
	f := func(v uint64) bool {
		v &= (1 << 48) - 1
		var b [6]byte
		putUint48(b[:], v)
		return uint48(b[:]) == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSystemEventRoundTrip(t *testing.T) {
	m := SystemEvent{StockLocate: 1, TrackingNumber: 2, Timestamp: 12345, EventCode: 'O'}
	var d SystemEvent
	if err := d.DecodeFromBytes(m.Bytes()); err != nil {
		t.Fatal(err)
	}
	if d != m {
		t.Fatalf("round trip: %+v != %+v", d, m)
	}
}

func TestMoldPacketRoundTrip(t *testing.T) {
	var p MoldPacket
	p.Header.SetSession("SESS01")
	p.Header.Sequence = 1000
	var a AddOrder
	a.SetStock("AAPL")
	a.Shares = 100
	a.Price = PriceToFixed(190)
	p.Append(a.Bytes())
	se := SystemEvent{EventCode: 'O'}
	p.Append(se.Bytes())
	var b AddOrder
	b.SetStock("MSFT")
	b.Shares = 50
	b.Price = PriceToFixed(410)
	p.Append(b.Bytes())

	wire := p.Bytes()
	if len(wire) != p.WireLen() {
		t.Fatalf("wire len %d != WireLen %d", len(wire), p.WireLen())
	}

	var d MoldPacket
	if err := d.Decode(wire); err != nil {
		t.Fatal(err)
	}
	if d.Header.SessionString() != "SESS01" || d.Header.Sequence != 1000 || d.Header.Count != 3 {
		t.Fatalf("header: %+v", d.Header)
	}
	if len(d.Messages) != 3 || !bytes.Equal(d.Messages[0], a.Bytes()) {
		t.Fatalf("messages: %d", len(d.Messages))
	}

	// ForEachAddOrder skips the system event.
	var syms []string
	if err := ForEachAddOrder(wire, func(m *AddOrder) {
		syms = append(syms, m.StockSymbol())
	}); err != nil {
		t.Fatal(err)
	}
	if len(syms) != 2 || syms[0] != "AAPL" || syms[1] != "MSFT" {
		t.Fatalf("add orders seen: %v", syms)
	}
}

func TestMoldDecodeTruncated(t *testing.T) {
	var p MoldPacket
	p.Header.SetSession("S")
	var a AddOrder
	a.SetStock("AAPL")
	p.Append(a.Bytes())
	wire := p.Bytes()
	var d MoldPacket
	for _, cut := range []int{5, MoldHeaderLen + 1, len(wire) - 1} {
		if err := d.Decode(wire[:cut]); err == nil {
			t.Fatalf("truncation at %d not detected", cut)
		}
	}
	if err := ForEachAddOrder(wire[:len(wire)-1], func(*AddOrder) {}); err == nil {
		t.Fatal("ForEachAddOrder must detect truncation")
	}
}

func TestMessageLen(t *testing.T) {
	if MessageLen(TypeAddOrder) != AddOrderLen || MessageLen(TypeSystemEvent) != SystemEventLen {
		t.Fatal("known lengths wrong")
	}
	if MessageLen('?') != 0 {
		t.Fatal("unknown type should be 0")
	}
}

func TestExtractor(t *testing.T) {
	sp := spec.MustParse(`
header_type itch_add_order_t { fields { shares: 32; stock: 64; price: 32; } }
header itch_add_order_t add_order;
@query_field(add_order.shares)
@query_field(add_order.price)
@query_field_exact(add_order.stock)
`)
	prog, err := compiler.CompileSource(sp, "stock == GOOGL && price > 500000 : fwd(1)", compiler.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ex, err := NewExtractor(prog)
	if err != nil {
		t.Fatal(err)
	}
	var m AddOrder
	m.SetStock("GOOGL")
	m.Shares = 100
	m.Price = PriceToFixed(75) // 750000 fixed
	vals := ex.Values(&m, nil)
	as := prog.Evaluate(vals)
	if len(as.Ports) != 1 || as.Ports[0] != 1 {
		t.Fatalf("GOOGL@75 should forward: %+v (vals=%v)", as, vals)
	}
	m.Price = PriceToFixed(25)
	vals = ex.Values(&m, vals)
	if as := prog.Evaluate(vals); len(as.Ports) != 0 {
		t.Fatalf("GOOGL@25 should not forward: %+v", as)
	}
	// Buffer reuse: same backing array.
	vals2 := ex.Values(&m, vals)
	if &vals2[0] != &vals[0] {
		t.Fatal("extractor should reuse the provided buffer")
	}
}

func TestExtractorRejectsUnknownField(t *testing.T) {
	sp := spec.MustParse(`
header_type weird_t { fields { volume: 32; } }
header weird_t w;
@query_field(w.volume)
`)
	prog, err := compiler.CompileSource(sp, "volume > 10 : fwd(1)", compiler.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewExtractor(prog); err == nil {
		t.Fatal("unknown field binding should fail")
	}
}
