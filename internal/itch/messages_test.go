package itch

import "testing"

func TestOrderExecutedRoundTrip(t *testing.T) {
	m := OrderExecuted{StockLocate: 1, TrackingNumber: 2, Timestamp: 333,
		OrderRef: 444, ExecutedShares: 555, MatchNumber: 666}
	if len(m.Bytes()) != OrderExecLen {
		t.Fatalf("wire length %d", len(m.Bytes()))
	}
	var d OrderExecuted
	if err := d.DecodeFromBytes(m.Bytes()); err != nil {
		t.Fatal(err)
	}
	if d != m {
		t.Fatalf("round trip: %+v != %+v", d, m)
	}
	if err := d.DecodeFromBytes(m.Bytes()[:10]); err != ErrTruncated {
		t.Fatalf("short: %v", err)
	}
}

func TestOrderCancelRoundTrip(t *testing.T) {
	m := OrderCancel{StockLocate: 9, Timestamp: 1 << 40, OrderRef: 7, CanceledShares: 100}
	var d OrderCancel
	if err := d.DecodeFromBytes(m.Bytes()); err != nil {
		t.Fatal(err)
	}
	if d != m {
		t.Fatalf("round trip: %+v != %+v", d, m)
	}
}

func TestOrderDeleteRoundTrip(t *testing.T) {
	m := OrderDelete{StockLocate: 3, TrackingNumber: 4, Timestamp: 5, OrderRef: 6}
	var d OrderDelete
	if err := d.DecodeFromBytes(m.Bytes()); err != nil {
		t.Fatal(err)
	}
	if d != m {
		t.Fatalf("round trip: %+v != %+v", d, m)
	}
}

func TestOrderReplaceRoundTrip(t *testing.T) {
	m := OrderReplace{StockLocate: 3, Timestamp: 5, OrigOrderRef: 6,
		NewOrderRef: 7, Shares: 800, Price: PriceToFixed(10.5)}
	var d OrderReplace
	if err := d.DecodeFromBytes(m.Bytes()); err != nil {
		t.Fatal(err)
	}
	if d != m {
		t.Fatalf("round trip: %+v != %+v", d, m)
	}
}

func TestTradeRoundTrip(t *testing.T) {
	m := Trade{StockLocate: 3, Timestamp: 5, OrderRef: 6, Side: Buy,
		Shares: 100, Price: PriceToFixed(99.99), MatchNumber: 12345}
	m.SetStock("NVDA")
	if len(m.Bytes()) != TradeLen {
		t.Fatalf("wire length %d", len(m.Bytes()))
	}
	var d Trade
	if err := d.DecodeFromBytes(m.Bytes()); err != nil {
		t.Fatal(err)
	}
	if d != m {
		t.Fatalf("round trip: %+v != %+v", d, m)
	}
}

func TestStockDirectoryRoundTrip(t *testing.T) {
	m := StockDirectory{StockLocate: 1, Timestamp: 2, MarketCategory: 'Q',
		FinancialStatus: 'N', RoundLotSize: 100, RoundLotsOnly: 'N',
		IssueClassification: 'C', Authenticity: 'P', ShortSaleThreshold: 'N',
		IPOFlag: 'N', LULDReferencePriceTier: '1', ETPFlag: 'N',
		ETPLeverageFactor: 0, InverseIndicator: 'N'}
	m.SetStock("AAPL")
	copy(m.IssueSubType[:], "Z ")
	if len(m.Bytes()) != StockDirectoryLen {
		t.Fatalf("wire length %d", len(m.Bytes()))
	}
	var d StockDirectory
	if err := d.DecodeFromBytes(m.Bytes()); err != nil {
		t.Fatal(err)
	}
	if d != m {
		t.Fatalf("round trip:\n%+v\n%+v", d, m)
	}
}

func TestWrongTypeRejected(t *testing.T) {
	buf := make([]byte, 64)
	buf[0] = '?'
	if err := (&OrderExecuted{}).DecodeFromBytes(buf); err == nil {
		t.Fatal("exec should reject wrong type")
	}
	if err := (&OrderCancel{}).DecodeFromBytes(buf); err == nil {
		t.Fatal("cancel should reject wrong type")
	}
	if err := (&OrderDelete{}).DecodeFromBytes(buf); err == nil {
		t.Fatal("delete should reject wrong type")
	}
	if err := (&OrderReplace{}).DecodeFromBytes(buf); err == nil {
		t.Fatal("replace should reject wrong type")
	}
	if err := (&Trade{}).DecodeFromBytes(buf); err == nil {
		t.Fatal("trade should reject wrong type")
	}
	if err := (&StockDirectory{}).DecodeFromBytes(buf); err == nil {
		t.Fatal("directory should reject wrong type")
	}
}

func TestMessageLenFullSet(t *testing.T) {
	want := map[byte]int{
		TypeSystemEvent:    SystemEventLen,
		TypeAddOrder:       AddOrderLen,
		TypeOrderExec:      OrderExecLen,
		TypeOrderCancel:    OrderCancelLen,
		TypeOrderDelete:    OrderDeleteLen,
		TypeOrderReplace:   OrderReplaceLen,
		TypeTrade:          TradeLen,
		TypeStockDirectory: StockDirectoryLen,
	}
	for typ, n := range want {
		if got := MessageLen(typ); got != n {
			t.Errorf("MessageLen(%q) = %d, want %d", typ, got, n)
		}
	}
}

// TestMoldMixedMessageTypes checks that a datagram carrying the full ITCH
// vocabulary decodes and that the add-order filter skips the rest.
func TestMoldMixedMessageTypes(t *testing.T) {
	var mp MoldPacket
	mp.Header.SetSession("MIX")
	var a AddOrder
	a.SetStock("GOOGL")
	var tr Trade
	tr.SetStock("GOOGL")
	var sd StockDirectory
	sd.SetStock("GOOGL")
	mp.Append((&SystemEvent{EventCode: 'O'}).Bytes())
	mp.Append(sd.Bytes())
	mp.Append(a.Bytes())
	mp.Append((&OrderExecuted{OrderRef: 1}).Bytes())
	mp.Append((&OrderCancel{OrderRef: 1}).Bytes())
	mp.Append((&OrderReplace{OrigOrderRef: 1}).Bytes())
	mp.Append((&OrderDelete{OrderRef: 1}).Bytes())
	mp.Append(tr.Bytes())
	wire := mp.Bytes()

	var decoded MoldPacket
	if err := decoded.Decode(wire); err != nil {
		t.Fatal(err)
	}
	if len(decoded.Messages) != 8 {
		t.Fatalf("decoded %d messages", len(decoded.Messages))
	}
	adds := 0
	if err := ForEachAddOrder(wire, func(*AddOrder) { adds++ }); err != nil {
		t.Fatal(err)
	}
	if adds != 1 {
		t.Fatalf("add-order filter saw %d, want 1", adds)
	}
}
