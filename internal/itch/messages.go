package itch

import (
	"encoding/binary"
	"fmt"
)

// Additional ITCH 5.0 message lengths (type byte included).
const (
	OrderCancelLen    = 23
	OrderDeleteLen    = 19
	OrderReplaceLen   = 35
	StockDirectoryLen = 39
)

// Additional message type bytes.
const (
	TypeOrderCancel    = 'X'
	TypeOrderDelete    = 'D'
	TypeOrderReplace   = 'U'
	TypeStockDirectory = 'R'
)

// OrderExecuted is the 'E' message: shares from a resting order executed
// against an incoming order.
type OrderExecuted struct {
	StockLocate    uint16
	TrackingNumber uint16
	Timestamp      uint64
	OrderRef       uint64
	ExecutedShares uint32
	MatchNumber    uint64
}

// DecodeFromBytes parses an order-executed message.
func (m *OrderExecuted) DecodeFromBytes(data []byte) error {
	if len(data) < OrderExecLen {
		return ErrTruncated
	}
	if data[0] != TypeOrderExec {
		return fmt.Errorf("itch: message type %q is not order-executed", data[0])
	}
	m.StockLocate = binary.BigEndian.Uint16(data[1:3])
	m.TrackingNumber = binary.BigEndian.Uint16(data[3:5])
	m.Timestamp = uint48(data[5:11])
	m.OrderRef = binary.BigEndian.Uint64(data[11:19])
	m.ExecutedShares = binary.BigEndian.Uint32(data[19:23])
	m.MatchNumber = binary.BigEndian.Uint64(data[23:31])
	return nil
}

// SerializeTo writes the message into b (OrderExecLen bytes).
func (m *OrderExecuted) SerializeTo(b []byte) {
	b[0] = TypeOrderExec
	binary.BigEndian.PutUint16(b[1:3], m.StockLocate)
	binary.BigEndian.PutUint16(b[3:5], m.TrackingNumber)
	putUint48(b[5:11], m.Timestamp)
	binary.BigEndian.PutUint64(b[11:19], m.OrderRef)
	binary.BigEndian.PutUint32(b[19:23], m.ExecutedShares)
	binary.BigEndian.PutUint64(b[23:31], m.MatchNumber)
}

// Bytes serializes into a fresh buffer.
func (m *OrderExecuted) Bytes() []byte {
	b := make([]byte, OrderExecLen)
	m.SerializeTo(b)
	return b
}

// OrderCancel is the 'X' message: shares removed from a resting order.
type OrderCancel struct {
	StockLocate    uint16
	TrackingNumber uint16
	Timestamp      uint64
	OrderRef       uint64
	CanceledShares uint32
}

// DecodeFromBytes parses an order-cancel message.
func (m *OrderCancel) DecodeFromBytes(data []byte) error {
	if len(data) < OrderCancelLen {
		return ErrTruncated
	}
	if data[0] != TypeOrderCancel {
		return fmt.Errorf("itch: message type %q is not order-cancel", data[0])
	}
	m.StockLocate = binary.BigEndian.Uint16(data[1:3])
	m.TrackingNumber = binary.BigEndian.Uint16(data[3:5])
	m.Timestamp = uint48(data[5:11])
	m.OrderRef = binary.BigEndian.Uint64(data[11:19])
	m.CanceledShares = binary.BigEndian.Uint32(data[19:23])
	return nil
}

// SerializeTo writes the message into b (OrderCancelLen bytes).
func (m *OrderCancel) SerializeTo(b []byte) {
	b[0] = TypeOrderCancel
	binary.BigEndian.PutUint16(b[1:3], m.StockLocate)
	binary.BigEndian.PutUint16(b[3:5], m.TrackingNumber)
	putUint48(b[5:11], m.Timestamp)
	binary.BigEndian.PutUint64(b[11:19], m.OrderRef)
	binary.BigEndian.PutUint32(b[19:23], m.CanceledShares)
}

// Bytes serializes into a fresh buffer.
func (m *OrderCancel) Bytes() []byte {
	b := make([]byte, OrderCancelLen)
	m.SerializeTo(b)
	return b
}

// OrderDelete is the 'D' message: a resting order removed entirely.
type OrderDelete struct {
	StockLocate    uint16
	TrackingNumber uint16
	Timestamp      uint64
	OrderRef       uint64
}

// DecodeFromBytes parses an order-delete message.
func (m *OrderDelete) DecodeFromBytes(data []byte) error {
	if len(data) < OrderDeleteLen {
		return ErrTruncated
	}
	if data[0] != TypeOrderDelete {
		return fmt.Errorf("itch: message type %q is not order-delete", data[0])
	}
	m.StockLocate = binary.BigEndian.Uint16(data[1:3])
	m.TrackingNumber = binary.BigEndian.Uint16(data[3:5])
	m.Timestamp = uint48(data[5:11])
	m.OrderRef = binary.BigEndian.Uint64(data[11:19])
	return nil
}

// SerializeTo writes the message into b (OrderDeleteLen bytes).
func (m *OrderDelete) SerializeTo(b []byte) {
	b[0] = TypeOrderDelete
	binary.BigEndian.PutUint16(b[1:3], m.StockLocate)
	binary.BigEndian.PutUint16(b[3:5], m.TrackingNumber)
	putUint48(b[5:11], m.Timestamp)
	binary.BigEndian.PutUint64(b[11:19], m.OrderRef)
}

// Bytes serializes into a fresh buffer.
func (m *OrderDelete) Bytes() []byte {
	b := make([]byte, OrderDeleteLen)
	m.SerializeTo(b)
	return b
}

// OrderReplace is the 'U' message: a resting order canceled and replaced
// with new size and price under a new reference number.
type OrderReplace struct {
	StockLocate    uint16
	TrackingNumber uint16
	Timestamp      uint64
	OrigOrderRef   uint64
	NewOrderRef    uint64
	Shares         uint32
	Price          uint32
}

// DecodeFromBytes parses an order-replace message.
func (m *OrderReplace) DecodeFromBytes(data []byte) error {
	if len(data) < OrderReplaceLen {
		return ErrTruncated
	}
	if data[0] != TypeOrderReplace {
		return fmt.Errorf("itch: message type %q is not order-replace", data[0])
	}
	m.StockLocate = binary.BigEndian.Uint16(data[1:3])
	m.TrackingNumber = binary.BigEndian.Uint16(data[3:5])
	m.Timestamp = uint48(data[5:11])
	m.OrigOrderRef = binary.BigEndian.Uint64(data[11:19])
	m.NewOrderRef = binary.BigEndian.Uint64(data[19:27])
	m.Shares = binary.BigEndian.Uint32(data[27:31])
	m.Price = binary.BigEndian.Uint32(data[31:35])
	return nil
}

// SerializeTo writes the message into b (OrderReplaceLen bytes).
func (m *OrderReplace) SerializeTo(b []byte) {
	b[0] = TypeOrderReplace
	binary.BigEndian.PutUint16(b[1:3], m.StockLocate)
	binary.BigEndian.PutUint16(b[3:5], m.TrackingNumber)
	putUint48(b[5:11], m.Timestamp)
	binary.BigEndian.PutUint64(b[11:19], m.OrigOrderRef)
	binary.BigEndian.PutUint64(b[19:27], m.NewOrderRef)
	binary.BigEndian.PutUint32(b[27:31], m.Shares)
	binary.BigEndian.PutUint32(b[31:35], m.Price)
}

// Bytes serializes into a fresh buffer.
func (m *OrderReplace) Bytes() []byte {
	b := make([]byte, OrderReplaceLen)
	m.SerializeTo(b)
	return b
}

// Trade is the 'P' message: a non-displayable order executed (trades that
// never appeared as add-orders).
type Trade struct {
	StockLocate    uint16
	TrackingNumber uint16
	Timestamp      uint64
	OrderRef       uint64
	Side           Side
	Shares         uint32
	Stock          [8]byte
	Price          uint32
	MatchNumber    uint64
}

// SetStock writes a symbol into the fixed-width stock field.
func (m *Trade) SetStock(sym string) {
	for i := 0; i < 8; i++ {
		if i < len(sym) {
			m.Stock[i] = sym[i]
		} else {
			m.Stock[i] = ' '
		}
	}
}

// DecodeFromBytes parses a trade message.
func (m *Trade) DecodeFromBytes(data []byte) error {
	if len(data) < TradeLen {
		return ErrTruncated
	}
	if data[0] != TypeTrade {
		return fmt.Errorf("itch: message type %q is not a trade", data[0])
	}
	m.StockLocate = binary.BigEndian.Uint16(data[1:3])
	m.TrackingNumber = binary.BigEndian.Uint16(data[3:5])
	m.Timestamp = uint48(data[5:11])
	m.OrderRef = binary.BigEndian.Uint64(data[11:19])
	m.Side = Side(data[19])
	m.Shares = binary.BigEndian.Uint32(data[20:24])
	copy(m.Stock[:], data[24:32])
	m.Price = binary.BigEndian.Uint32(data[32:36])
	m.MatchNumber = binary.BigEndian.Uint64(data[36:44])
	return nil
}

// SerializeTo writes the message into b (TradeLen bytes).
func (m *Trade) SerializeTo(b []byte) {
	b[0] = TypeTrade
	binary.BigEndian.PutUint16(b[1:3], m.StockLocate)
	binary.BigEndian.PutUint16(b[3:5], m.TrackingNumber)
	putUint48(b[5:11], m.Timestamp)
	binary.BigEndian.PutUint64(b[11:19], m.OrderRef)
	b[19] = byte(m.Side)
	binary.BigEndian.PutUint32(b[20:24], m.Shares)
	copy(b[24:32], m.Stock[:])
	binary.BigEndian.PutUint32(b[32:36], m.Price)
	binary.BigEndian.PutUint64(b[36:44], m.MatchNumber)
}

// Bytes serializes into a fresh buffer.
func (m *Trade) Bytes() []byte {
	b := make([]byte, TradeLen)
	m.SerializeTo(b)
	return b
}

// StockDirectory is the 'R' message: per-symbol session metadata emitted
// at start of day.
type StockDirectory struct {
	StockLocate            uint16
	TrackingNumber         uint16
	Timestamp              uint64
	Stock                  [8]byte
	MarketCategory         byte
	FinancialStatus        byte
	RoundLotSize           uint32
	RoundLotsOnly          byte
	IssueClassification    byte
	IssueSubType           [2]byte
	Authenticity           byte
	ShortSaleThreshold     byte
	IPOFlag                byte
	LULDReferencePriceTier byte
	ETPFlag                byte
	ETPLeverageFactor      uint32
	InverseIndicator       byte
}

// SetStock writes a symbol into the fixed-width stock field.
func (m *StockDirectory) SetStock(sym string) {
	for i := 0; i < 8; i++ {
		if i < len(sym) {
			m.Stock[i] = sym[i]
		} else {
			m.Stock[i] = ' '
		}
	}
}

// DecodeFromBytes parses a stock-directory message.
func (m *StockDirectory) DecodeFromBytes(data []byte) error {
	if len(data) < StockDirectoryLen {
		return ErrTruncated
	}
	if data[0] != TypeStockDirectory {
		return fmt.Errorf("itch: message type %q is not stock-directory", data[0])
	}
	m.StockLocate = binary.BigEndian.Uint16(data[1:3])
	m.TrackingNumber = binary.BigEndian.Uint16(data[3:5])
	m.Timestamp = uint48(data[5:11])
	copy(m.Stock[:], data[11:19])
	m.MarketCategory = data[19]
	m.FinancialStatus = data[20]
	m.RoundLotSize = binary.BigEndian.Uint32(data[21:25])
	m.RoundLotsOnly = data[25]
	m.IssueClassification = data[26]
	copy(m.IssueSubType[:], data[27:29])
	m.Authenticity = data[29]
	m.ShortSaleThreshold = data[30]
	m.IPOFlag = data[31]
	m.LULDReferencePriceTier = data[32]
	m.ETPFlag = data[33]
	m.ETPLeverageFactor = binary.BigEndian.Uint32(data[34:38])
	m.InverseIndicator = data[38]
	return nil
}

// SerializeTo writes the message into b (StockDirectoryLen bytes).
func (m *StockDirectory) SerializeTo(b []byte) {
	b[0] = TypeStockDirectory
	binary.BigEndian.PutUint16(b[1:3], m.StockLocate)
	binary.BigEndian.PutUint16(b[3:5], m.TrackingNumber)
	putUint48(b[5:11], m.Timestamp)
	copy(b[11:19], m.Stock[:])
	b[19] = m.MarketCategory
	b[20] = m.FinancialStatus
	binary.BigEndian.PutUint32(b[21:25], m.RoundLotSize)
	b[25] = m.RoundLotsOnly
	b[26] = m.IssueClassification
	copy(b[27:29], m.IssueSubType[:])
	b[29] = m.Authenticity
	b[30] = m.ShortSaleThreshold
	b[31] = m.IPOFlag
	b[32] = m.LULDReferencePriceTier
	b[33] = m.ETPFlag
	binary.BigEndian.PutUint32(b[34:38], m.ETPLeverageFactor)
	b[38] = m.InverseIndicator
}

// Bytes serializes into a fresh buffer.
func (m *StockDirectory) Bytes() []byte {
	b := make([]byte, StockDirectoryLen)
	m.SerializeTo(b)
	return b
}
