// Package itch implements the Nasdaq market-data wire formats used in the
// paper's case study: MoldUDP64 framing and (a subset of) the ITCH 5.0
// message set, most importantly the add-order message that Camus
// subscriptions filter on.
//
// Like real ITCH, alpha fields (stock symbols, the buy/sell indicator) are
// ASCII, left-justified and space-padded; integers are big-endian;
// timestamps are nanoseconds since midnight in 48 bits. Decoding follows
// the gopacket DecodingLayer idiom: preallocated structs, no per-message
// allocation.
package itch

import (
	"encoding/binary"
	"errors"
	"fmt"
	"strings"
)

// Message type bytes (ITCH 5.0).
const (
	TypeSystemEvent = 'S'
	TypeAddOrder    = 'A'
	TypeOrderExec   = 'E'
	TypeTrade       = 'P'
)

// Fixed message lengths in bytes (type byte included).
const (
	SystemEventLen = 12
	AddOrderLen    = 36
	OrderExecLen   = 31
	TradeLen       = 44
)

// Common errors.
var (
	ErrTruncated   = errors.New("itch: truncated message")
	ErrUnknownType = errors.New("itch: unknown message type")
	// ErrNotAddOrder is returned by AddOrder.DecodeFromBytes for a
	// well-formed message of a different type. It is a sentinel, not a
	// formatted error: decoding runs per message on the dataplane's
	// zero-alloc lanes, where an fmt.Errorf would allocate.
	ErrNotAddOrder = errors.New("itch: message is not an add-order")
)

// Side is the buy/sell indicator of an add-order message.
type Side byte

// Side values.
const (
	Buy  Side = 'B'
	Sell Side = 'S'
)

// AddOrder is the ITCH 5.0 "Add Order — No MPID" message ('A'): a new
// order accepted by the exchange. This is the message the paper's
// subscriptions match on (stock, shares, price).
type AddOrder struct {
	StockLocate    uint16
	TrackingNumber uint16
	Timestamp      uint64 // 48-bit nanoseconds since midnight
	OrderRef       uint64
	Side           Side
	Shares         uint32
	Stock          [8]byte // ASCII, space-padded
	Price          uint32  // price in 1/10000 dollars (ITCH fixed point)
}

// SetStock writes a symbol into the fixed-width stock field.
func (m *AddOrder) SetStock(sym string) {
	for i := 0; i < 8; i++ {
		if i < len(sym) {
			m.Stock[i] = sym[i]
		} else {
			m.Stock[i] = ' '
		}
	}
}

// StockSymbol returns the stock symbol with padding trimmed.
func (m *AddOrder) StockSymbol() string {
	return strings.TrimRight(string(m.Stock[:]), " ")
}

// StockValue returns the stock field as the big-endian uint64 the Camus
// pipeline matches on.
func (m *AddOrder) StockValue() uint64 {
	return binary.BigEndian.Uint64(m.Stock[:])
}

// DecodeFromBytes parses an add-order message (including the type byte).
func (m *AddOrder) DecodeFromBytes(data []byte) error {
	if len(data) < AddOrderLen {
		return ErrTruncated
	}
	if data[0] != TypeAddOrder {
		return ErrNotAddOrder
	}
	m.StockLocate = binary.BigEndian.Uint16(data[1:3])
	m.TrackingNumber = binary.BigEndian.Uint16(data[3:5])
	m.Timestamp = uint48(data[5:11])
	m.OrderRef = binary.BigEndian.Uint64(data[11:19])
	m.Side = Side(data[19])
	m.Shares = binary.BigEndian.Uint32(data[20:24])
	copy(m.Stock[:], data[24:32])
	m.Price = binary.BigEndian.Uint32(data[32:36])
	return nil
}

// SerializeTo writes the message into b, which must hold AddOrderLen
// bytes.
func (m *AddOrder) SerializeTo(b []byte) {
	b[0] = TypeAddOrder
	binary.BigEndian.PutUint16(b[1:3], m.StockLocate)
	binary.BigEndian.PutUint16(b[3:5], m.TrackingNumber)
	putUint48(b[5:11], m.Timestamp)
	binary.BigEndian.PutUint64(b[11:19], m.OrderRef)
	b[19] = byte(m.Side)
	binary.BigEndian.PutUint32(b[20:24], m.Shares)
	copy(b[24:32], m.Stock[:])
	binary.BigEndian.PutUint32(b[32:36], m.Price)
}

// Bytes serializes the message into a fresh buffer.
func (m *AddOrder) Bytes() []byte {
	b := make([]byte, AddOrderLen)
	m.SerializeTo(b)
	return b
}

// SystemEvent is the ITCH 'S' message signaling market phase changes.
type SystemEvent struct {
	StockLocate    uint16
	TrackingNumber uint16
	Timestamp      uint64
	EventCode      byte // 'O' start of messages, 'S' start of system hours, ...
}

// DecodeFromBytes parses a system-event message.
func (m *SystemEvent) DecodeFromBytes(data []byte) error {
	if len(data) < SystemEventLen {
		return ErrTruncated
	}
	if data[0] != TypeSystemEvent {
		return fmt.Errorf("itch: message type %q is not a system event", data[0])
	}
	m.StockLocate = binary.BigEndian.Uint16(data[1:3])
	m.TrackingNumber = binary.BigEndian.Uint16(data[3:5])
	m.Timestamp = uint48(data[5:11])
	m.EventCode = data[11]
	return nil
}

// SerializeTo writes the message into b (SystemEventLen bytes).
func (m *SystemEvent) SerializeTo(b []byte) {
	b[0] = TypeSystemEvent
	binary.BigEndian.PutUint16(b[1:3], m.StockLocate)
	binary.BigEndian.PutUint16(b[3:5], m.TrackingNumber)
	putUint48(b[5:11], m.Timestamp)
	b[11] = m.EventCode
}

// Bytes serializes the message into a fresh buffer.
func (m *SystemEvent) Bytes() []byte {
	b := make([]byte, SystemEventLen)
	m.SerializeTo(b)
	return b
}

// MessageLen returns the wire length of a message from its type byte, or
// 0 when the type is unknown.
func MessageLen(typ byte) int {
	switch typ {
	case TypeSystemEvent:
		return SystemEventLen
	case TypeAddOrder:
		return AddOrderLen
	case TypeOrderExec:
		return OrderExecLen
	case TypeTrade:
		return TradeLen
	case TypeOrderCancel:
		return OrderCancelLen
	case TypeOrderDelete:
		return OrderDeleteLen
	case TypeOrderReplace:
		return OrderReplaceLen
	case TypeStockDirectory:
		return StockDirectoryLen
	default:
		return 0
	}
}

func uint48(b []byte) uint64 {
	return uint64(b[0])<<40 | uint64(b[1])<<32 | uint64(b[2])<<24 |
		uint64(b[3])<<16 | uint64(b[4])<<8 | uint64(b[5])
}

func putUint48(b []byte, v uint64) {
	b[0] = byte(v >> 40)
	b[1] = byte(v >> 32)
	b[2] = byte(v >> 24)
	b[3] = byte(v >> 16)
	b[4] = byte(v >> 8)
	b[5] = byte(v)
}

// PriceToFixed converts a dollar price to ITCH 1/10000-dollar fixed point.
func PriceToFixed(dollars float64) uint32 {
	return uint32(dollars*10000 + 0.5)
}

// FixedToPrice converts ITCH fixed point back to dollars.
func FixedToPrice(v uint32) float64 { return float64(v) / 10000 }
