package itch

import (
	"encoding/binary"
	"fmt"
	"strings"
)

// MoldUDP64 framing: a 20-byte downstream header (10-byte session,
// 64-bit sequence number, 16-bit message count) followed by count
// messages, each prefixed with a 16-bit length.
const MoldHeaderLen = 20

// EndOfSessionCount is the sentinel message count (0xFFFF) that marks a
// downstream packet as the MoldUDP64 end-of-session announcement: the
// sender is done, Sequence is the next sequence number that will never be
// used. End-of-session packets carry no messages.
const EndOfSessionCount = 0xFFFF

// MoldHeader is the MoldUDP64 downstream packet header.
type MoldHeader struct {
	Session  [10]byte
	Sequence uint64
	Count    uint16
}

// SetSession writes a session identifier (ASCII, space-padded).
func (h *MoldHeader) SetSession(s string) {
	for i := 0; i < 10; i++ {
		if i < len(s) {
			h.Session[i] = s[i]
		} else {
			h.Session[i] = ' '
		}
	}
}

// SessionString returns the session identifier with padding trimmed.
func (h *MoldHeader) SessionString() string {
	return strings.TrimRight(string(h.Session[:]), " ")
}

// DecodeFromBytes parses the header.
func (h *MoldHeader) DecodeFromBytes(data []byte) error {
	if len(data) < MoldHeaderLen {
		return ErrTruncated
	}
	copy(h.Session[:], data[0:10])
	h.Sequence = binary.BigEndian.Uint64(data[10:18])
	h.Count = binary.BigEndian.Uint16(data[18:20])
	return nil
}

// SerializeTo writes the header into b (MoldHeaderLen bytes).
func (h *MoldHeader) SerializeTo(b []byte) {
	copy(b[0:10], h.Session[:])
	binary.BigEndian.PutUint64(b[10:18], h.Sequence)
	binary.BigEndian.PutUint16(b[18:20], h.Count)
}

// IsHeartbeat reports whether the header frames an idle heartbeat: a
// downstream packet with zero messages whose Sequence advertises the next
// sequence number the sender will use.
func (h *MoldHeader) IsHeartbeat() bool { return h.Count == 0 }

// IsEndOfSession reports whether the header frames the end-of-session
// announcement.
func (h *MoldHeader) IsEndOfSession() bool { return h.Count == EndOfSessionCount }

// HeartbeatBytes builds an idle-heartbeat datagram for a session whose
// next unsent sequence number is nextSeq.
func HeartbeatBytes(session [10]byte, nextSeq uint64) []byte {
	h := MoldHeader{Session: session, Sequence: nextSeq, Count: 0}
	b := make([]byte, MoldHeaderLen)
	h.SerializeTo(b)
	return b
}

// EndOfSessionBytes builds the end-of-session datagram: nextSeq is the
// first sequence number that will never be sent.
func EndOfSessionBytes(session [10]byte, nextSeq uint64) []byte {
	h := MoldHeader{Session: session, Sequence: nextSeq, Count: EndOfSessionCount}
	b := make([]byte, MoldHeaderLen)
	h.SerializeTo(b)
	return b
}

// MoldPacket is a MoldUDP64 datagram payload under construction or after
// decoding. Messages hold the raw per-message bytes (type byte first,
// without the 16-bit length prefix).
type MoldPacket struct {
	Header   MoldHeader
	Messages [][]byte
}

// Append adds a message to the packet and bumps the count.
func (p *MoldPacket) Append(msg []byte) {
	p.Messages = append(p.Messages, msg)
	p.Header.Count = uint16(len(p.Messages))
}

// WireLen returns the serialized length of the packet.
func (p *MoldPacket) WireLen() int {
	n := MoldHeaderLen
	for _, m := range p.Messages {
		n += 2 + len(m)
	}
	return n
}

// Bytes serializes the Mold packet (header + length-prefixed messages).
func (p *MoldPacket) Bytes() []byte {
	return p.AppendTo(nil)
}

// AppendTo serializes the Mold packet into buf (grown as needed) and
// returns the wire bytes. Passing a recycled buffer makes serialization
// allocation-free in steady state — the egress hot path of the software
// dataplane.
//
//camus:hotpath
func (p *MoldPacket) AppendTo(buf []byte) []byte {
	p.Header.Count = uint16(len(p.Messages))
	n := p.WireLen()
	if cap(buf) < n {
		buf = make([]byte, n) //camus:alloc-ok one-time growth; callers pass a recycled buffer in steady state
	}
	buf = buf[:n]
	p.Header.SerializeTo(buf)
	off := MoldHeaderLen
	for _, m := range p.Messages {
		binary.BigEndian.PutUint16(buf[off:off+2], uint16(len(m)))
		copy(buf[off+2:], m)
		off += 2 + len(m)
	}
	return buf
}

// Decode parses a Mold datagram. Message slices alias into data.
func (p *MoldPacket) Decode(data []byte) error {
	if err := p.Header.DecodeFromBytes(data); err != nil {
		return err
	}
	p.Messages = p.Messages[:0]
	if p.Header.IsEndOfSession() {
		return nil // end-of-session carries no messages
	}
	off := MoldHeaderLen
	for i := 0; i < int(p.Header.Count); i++ {
		if off+2 > len(data) {
			return fmt.Errorf("itch: mold message %d: %w", i, ErrTruncated)
		}
		l := int(binary.BigEndian.Uint16(data[off : off+2]))
		off += 2
		if off+l > len(data) {
			return fmt.Errorf("itch: mold message %d body: %w", i, ErrTruncated)
		}
		p.Messages = append(p.Messages, data[off:off+l])
		off += l
	}
	return nil
}

// ForEachAddOrder decodes a Mold datagram and invokes fn for every
// add-order message, reusing a single AddOrder struct (zero allocation per
// message). Non-add-order messages are skipped.
func ForEachAddOrder(data []byte, fn func(*AddOrder)) error {
	return ForEachAddOrderRaw(data, func(m *AddOrder, _ []byte) { fn(m) })
}

// ForEachAddOrderRaw is ForEachAddOrder, additionally passing each
// message's raw wire bytes (aliasing data, without the length prefix) so
// forwarding paths can reuse them instead of re-serializing — the
// zero-copy egress path of the software dataplane. The raw slice is only
// valid until the caller recycles data.
func ForEachAddOrderRaw(data []byte, fn func(*AddOrder, []byte)) error {
	var msg AddOrder
	return DecodeAddOrders(data, &msg, fn)
}

// DecodeAddOrders is ForEachAddOrderRaw with a caller-supplied scratch
// AddOrder: passing a long-lived scratch keeps the message struct off
// the heap entirely, which the dataplane's zero-alloc lanes rely on.
//
//camus:hotpath
func DecodeAddOrders(data []byte, msg *AddOrder, fn func(*AddOrder, []byte)) error {
	var hdr MoldHeader
	if err := hdr.DecodeFromBytes(data); err != nil {
		return err
	}
	if hdr.IsEndOfSession() {
		return nil
	}
	off := MoldHeaderLen
	for i := 0; i < int(hdr.Count); i++ {
		if off+2 > len(data) {
			//camus:alloc-ok malformed-datagram error path; a well-formed feed never takes it
			return fmt.Errorf("itch: mold message %d: %w", i, ErrTruncated)
		}
		l := int(binary.BigEndian.Uint16(data[off : off+2]))
		off += 2
		if off+l > len(data) {
			//camus:alloc-ok malformed-datagram error path; a well-formed feed never takes it
			return fmt.Errorf("itch: mold message %d body: %w", i, ErrTruncated)
		}
		if l > 0 && data[off] == TypeAddOrder {
			if err := msg.DecodeFromBytes(data[off : off+l]); err != nil {
				return err
			}
			fn(msg, data[off:off+l])
		}
		off += l
	}
	return nil
}

// FirstAddOrderLocate scans a Mold datagram for its first add-order
// message and returns that message's stock-locate code — the ITCH
// instrument/partition key the sharded dataplane fans out on. ok is
// false when the datagram has no decodable add-order.
//
//camus:hotpath
func FirstAddOrderLocate(data []byte) (uint16, bool) {
	var hdr MoldHeader
	if err := hdr.DecodeFromBytes(data); err != nil {
		return 0, false
	}
	if hdr.IsEndOfSession() {
		return 0, false
	}
	off := MoldHeaderLen
	for i := 0; i < int(hdr.Count); i++ {
		if off+2 > len(data) {
			return 0, false
		}
		l := int(binary.BigEndian.Uint16(data[off : off+2]))
		off += 2
		if off+l > len(data) {
			return 0, false
		}
		// An add-order's locate code sits right after the type byte.
		if l >= 3 && data[off] == TypeAddOrder {
			return binary.BigEndian.Uint16(data[off+1 : off+3]), true
		}
		off += l
	}
	return 0, false
}
