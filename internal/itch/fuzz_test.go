package itch

import "testing"

// FuzzMoldDecode checks the Mold/ITCH decoders never panic or read out of
// bounds on arbitrary datagrams.
func FuzzMoldDecode(f *testing.F) {
	var good MoldPacket
	good.Header.SetSession("SEED")
	var a AddOrder
	a.SetStock("GOOGL")
	a.Shares = 100
	good.Append(a.Bytes())
	good.Append((&SystemEvent{EventCode: 'O'}).Bytes())
	f.Add(good.Bytes())
	f.Add([]byte{})
	f.Add(make([]byte, MoldHeaderLen))
	f.Add([]byte("garbage that is long enough to look like a header...."))
	f.Add(HeartbeatBytes(good.Header.Session, 42))
	f.Add(EndOfSessionBytes(good.Header.Session, 99))

	f.Fuzz(func(t *testing.T, data []byte) {
		var mp MoldPacket
		if err := mp.Decode(data); err == nil {
			if mp.Header.IsEndOfSession() && len(mp.Messages) != 0 {
				t.Fatalf("end-of-session packet decoded %d messages", len(mp.Messages))
			}
			// Whatever decoded must re-serialize to at least the same
			// message count.
			re := mp.Bytes()
			var mp2 MoldPacket
			if err := mp2.Decode(re); err != nil {
				t.Fatalf("re-decode of re-serialized packet failed: %v", err)
			}
			if len(mp2.Messages) != len(mp.Messages) {
				t.Fatalf("message count changed: %d -> %d", len(mp.Messages), len(mp2.Messages))
			}
		}
		_ = ForEachAddOrder(data, func(o *AddOrder) {
			_ = o.StockSymbol()
			_ = o.StockValue()
		})
	})
}

// FuzzMoldRequestDecode checks the retransmission-request codec: never
// panic on arbitrary bytes, and anything that decodes round-trips
// bit-identically.
func FuzzMoldRequestDecode(f *testing.F) {
	var req MoldRequest
	req.SetSession("SEED")
	req.Sequence = 1234
	req.Count = 17
	f.Add(req.Bytes())
	f.Add([]byte{})
	f.Add(make([]byte, MoldRequestLen))
	f.Add(make([]byte, MoldRequestLen-1))
	f.Fuzz(func(t *testing.T, data []byte) {
		var r MoldRequest
		if err := r.DecodeFromBytes(data); err == nil {
			out := r.Bytes()
			if len(out) != MoldRequestLen {
				t.Fatalf("serialized length %d", len(out))
			}
			var r2 MoldRequest
			if err := r2.DecodeFromBytes(out); err != nil || r2 != r {
				t.Fatalf("round trip: %v %+v %+v", err, r, r2)
			}
			_ = r.SessionString()
		}
	})
}

// FuzzMoldControlDecode feeds heartbeat- and end-of-session-shaped inputs
// (and mutations of them) through the downstream decoder: control packets
// must decode with zero messages and never panic.
func FuzzMoldControlDecode(f *testing.F) {
	var sess [10]byte
	copy(sess[:], "CTRLSESS  ")
	f.Add(HeartbeatBytes(sess, 0))
	f.Add(HeartbeatBytes(sess, ^uint64(0)))
	f.Add(EndOfSessionBytes(sess, 1))
	f.Add(EndOfSessionBytes(sess, ^uint64(0)))
	f.Fuzz(func(t *testing.T, data []byte) {
		var mp MoldPacket
		if err := mp.Decode(data); err != nil {
			return
		}
		if mp.Header.IsHeartbeat() || mp.Header.IsEndOfSession() {
			if len(mp.Messages) != 0 {
				t.Fatalf("control packet decoded %d messages", len(mp.Messages))
			}
			// Rebuilding the control packet from its header must
			// round-trip the header fields.
			var re []byte
			if mp.Header.IsEndOfSession() {
				re = EndOfSessionBytes(mp.Header.Session, mp.Header.Sequence)
			} else {
				re = HeartbeatBytes(mp.Header.Session, mp.Header.Sequence)
			}
			var h2 MoldHeader
			if err := h2.DecodeFromBytes(re); err != nil || h2 != mp.Header {
				t.Fatalf("control round trip: %v %+v %+v", err, mp.Header, h2)
			}
		}
	})
}

// FuzzAddOrderDecode checks the fixed-size message decoder.
func FuzzAddOrderDecode(f *testing.F) {
	var a AddOrder
	a.SetStock("MSFT")
	f.Add(a.Bytes())
	f.Add([]byte{TypeAddOrder})
	f.Fuzz(func(t *testing.T, data []byte) {
		var m AddOrder
		if err := m.DecodeFromBytes(data); err == nil {
			out := m.Bytes()
			if len(out) != AddOrderLen {
				t.Fatalf("serialized length %d", len(out))
			}
			var m2 AddOrder
			if err := m2.DecodeFromBytes(out); err != nil || m2 != m {
				t.Fatalf("round trip: %v %+v %+v", err, m, m2)
			}
		}
	})
}
