package itch

import "testing"

// FuzzMoldDecode checks the Mold/ITCH decoders never panic or read out of
// bounds on arbitrary datagrams.
func FuzzMoldDecode(f *testing.F) {
	var good MoldPacket
	good.Header.SetSession("SEED")
	var a AddOrder
	a.SetStock("GOOGL")
	a.Shares = 100
	good.Append(a.Bytes())
	good.Append((&SystemEvent{EventCode: 'O'}).Bytes())
	f.Add(good.Bytes())
	f.Add([]byte{})
	f.Add(make([]byte, MoldHeaderLen))
	f.Add([]byte("garbage that is long enough to look like a header...."))

	f.Fuzz(func(t *testing.T, data []byte) {
		var mp MoldPacket
		if err := mp.Decode(data); err == nil {
			// Whatever decoded must re-serialize to at least the same
			// message count.
			re := mp.Bytes()
			var mp2 MoldPacket
			if err := mp2.Decode(re); err != nil {
				t.Fatalf("re-decode of re-serialized packet failed: %v", err)
			}
			if len(mp2.Messages) != len(mp.Messages) {
				t.Fatalf("message count changed: %d -> %d", len(mp.Messages), len(mp2.Messages))
			}
		}
		_ = ForEachAddOrder(data, func(o *AddOrder) {
			_ = o.StockSymbol()
			_ = o.StockValue()
		})
	})
}

// FuzzAddOrderDecode checks the fixed-size message decoder.
func FuzzAddOrderDecode(f *testing.F) {
	var a AddOrder
	a.SetStock("MSFT")
	f.Add(a.Bytes())
	f.Add([]byte{TypeAddOrder})
	f.Fuzz(func(t *testing.T, data []byte) {
		var m AddOrder
		if err := m.DecodeFromBytes(data); err == nil {
			out := m.Bytes()
			if len(out) != AddOrderLen {
				t.Fatalf("serialized length %d", len(out))
			}
			var m2 AddOrder
			if err := m2.DecodeFromBytes(out); err != nil || m2 != m {
				t.Fatalf("round trip: %v %+v %+v", err, m, m2)
			}
		}
	})
}
