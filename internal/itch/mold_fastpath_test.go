package itch

import (
	"bytes"
	"testing"
)

// buildShardPacket frames a Mold datagram with a system event followed by
// two add-orders carrying distinct locate codes.
func buildShardPacket(t *testing.T) (MoldPacket, AddOrder, AddOrder) {
	t.Helper()
	var p MoldPacket
	p.Header.SetSession("SHARD01")
	p.Header.Sequence = 77
	se := SystemEvent{EventCode: 'O'}
	p.Append(se.Bytes())
	var a AddOrder
	a.StockLocate = 0x1234
	a.SetStock("AAPL")
	a.Shares = 10
	a.Price = PriceToFixed(190)
	p.Append(a.Bytes())
	var b AddOrder
	b.StockLocate = 0x00FF
	b.SetStock("MSFT")
	b.Shares = 20
	b.Price = PriceToFixed(410)
	p.Append(b.Bytes())
	return p, a, b
}

func TestAppendToReusesBuffer(t *testing.T) {
	p, _, _ := buildShardPacket(t)
	want := p.Bytes()
	buf := make([]byte, 0, 4096)
	got := p.AppendTo(buf)
	if !bytes.Equal(got, want) {
		t.Fatal("AppendTo wire bytes differ from Bytes")
	}
	if &got[0] != &buf[:1][0] {
		t.Fatal("AppendTo did not reuse the provided buffer capacity")
	}
	// Serializing into a recycled buffer must not allocate.
	if allocs := testing.AllocsPerRun(200, func() {
		buf = p.AppendTo(buf)
	}); allocs != 0 {
		t.Fatalf("AppendTo allocates %v per op with a warm buffer", allocs)
	}
	// Too-small buffers grow transparently.
	if got := p.AppendTo(make([]byte, 0, 3)); !bytes.Equal(got, want) {
		t.Fatal("AppendTo with small buffer differs")
	}
}

func TestForEachAddOrderRaw(t *testing.T) {
	p, a, b := buildShardPacket(t)
	wire := p.Bytes()
	var raws [][]byte
	var locs []uint16
	if err := ForEachAddOrderRaw(wire, func(m *AddOrder, raw []byte) {
		raws = append(raws, raw)
		locs = append(locs, m.StockLocate)
	}); err != nil {
		t.Fatal(err)
	}
	if len(raws) != 2 || locs[0] != a.StockLocate || locs[1] != b.StockLocate {
		t.Fatalf("raw messages seen: %d, locates %v", len(raws), locs)
	}
	if !bytes.Equal(raws[0], a.Bytes()) || !bytes.Equal(raws[1], b.Bytes()) {
		t.Fatal("raw bytes differ from serialized messages")
	}
	// Raw slices must alias the input datagram (zero-copy egress).
	if &raws[0][0] != &wire[MoldHeaderLen+2+SystemEventLen+2] {
		t.Fatal("raw message does not alias the datagram buffer")
	}
}

func TestFirstAddOrderLocate(t *testing.T) {
	p, a, _ := buildShardPacket(t)
	wire := p.Bytes()
	loc, ok := FirstAddOrderLocate(wire)
	if !ok || loc != a.StockLocate {
		t.Fatalf("FirstAddOrderLocate = %#x, %v; want %#x, true", loc, ok, a.StockLocate)
	}
	// A datagram with no add-orders has no shard key.
	var hb MoldPacket
	hb.Header.SetSession("SHARD01")
	if _, ok := FirstAddOrderLocate(hb.Bytes()); ok {
		t.Fatal("heartbeat should have no shard key")
	}
	var se MoldPacket
	se.Header.SetSession("SHARD01")
	ev := SystemEvent{EventCode: 'O'}
	se.Append(ev.Bytes())
	if _, ok := FirstAddOrderLocate(se.Bytes()); ok {
		t.Fatal("system-event-only datagram should have no shard key")
	}
	// End-of-session and truncated datagrams are handled without panics.
	if _, ok := FirstAddOrderLocate(EndOfSessionBytes(hb.Header.Session, 5)); ok {
		t.Fatal("end-of-session should have no shard key")
	}
	// Truncation before the first add-order yields no key; truncation
	// after it still does (the scan stops at the first hit).
	if _, ok := FirstAddOrderLocate(wire[:MoldHeaderLen+1]); ok {
		t.Fatal("truncated datagram should have no shard key")
	}
	if got, ok := FirstAddOrderLocate(wire[:len(wire)-3]); !ok || got != a.StockLocate {
		t.Fatal("tail truncation must not hide the first add-order's key")
	}
}
