package itch

import "testing"

func TestMoldRequestRoundTrip(t *testing.T) {
	var req MoldRequest
	req.SetSession("CAMUS  001")
	req.Sequence = 777
	req.Count = 32
	b := req.Bytes()
	if len(b) != MoldRequestLen {
		t.Fatalf("request length %d, want %d", len(b), MoldRequestLen)
	}
	var got MoldRequest
	if err := got.DecodeFromBytes(b); err != nil {
		t.Fatal(err)
	}
	if got != req {
		t.Fatalf("round trip: %+v != %+v", got, req)
	}
	if got.SessionString() != "CAMUS  001" {
		t.Fatalf("session %q", got.SessionString())
	}
	if err := got.DecodeFromBytes(b[:MoldRequestLen-1]); err == nil {
		t.Fatal("truncated request decoded")
	}
}

func TestHeartbeatAndEndOfSessionFraming(t *testing.T) {
	var sess [10]byte
	copy(sess[:], []byte("FEED      "))

	hb := HeartbeatBytes(sess, 41)
	var mp MoldPacket
	if err := mp.Decode(hb); err != nil {
		t.Fatal(err)
	}
	if !mp.Header.IsHeartbeat() || mp.Header.IsEndOfSession() {
		t.Fatalf("heartbeat misclassified: %+v", mp.Header)
	}
	if mp.Header.Sequence != 41 || len(mp.Messages) != 0 {
		t.Fatalf("heartbeat decode: %+v msgs=%d", mp.Header, len(mp.Messages))
	}

	eos := EndOfSessionBytes(sess, 42)
	if err := mp.Decode(eos); err != nil {
		t.Fatal(err)
	}
	if !mp.Header.IsEndOfSession() || mp.Header.IsHeartbeat() {
		t.Fatalf("end-of-session misclassified: %+v", mp.Header)
	}
	if mp.Header.Sequence != 42 || len(mp.Messages) != 0 {
		t.Fatalf("end-of-session decode: %+v msgs=%d", mp.Header, len(mp.Messages))
	}

	// ForEachAddOrder must treat both as empty, not as truncated packets.
	for _, b := range [][]byte{hb, eos} {
		calls := 0
		if err := ForEachAddOrder(b, func(*AddOrder) { calls++ }); err != nil || calls != 0 {
			t.Fatalf("control packet: err=%v calls=%d", err, calls)
		}
	}
}
