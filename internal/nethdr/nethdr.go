// Package nethdr implements the minimal Ethernet/IPv4/UDP header stack the
// Camus dataplane and simulator carry ITCH traffic over. The decode path
// follows the gopacket DecodingLayer idiom: DecodeFromBytes fills a
// preallocated struct without allocating, so the hot path stays
// garbage-free.
package nethdr

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Header sizes in bytes.
const (
	EthernetLen = 14
	IPv4MinLen  = 20
	UDPLen      = 8
)

// EtherType values.
const (
	EtherTypeIPv4 = 0x0800
)

// IP protocol numbers.
const (
	ProtoUDP = 17
)

// Common decode errors.
var (
	ErrTruncated = errors.New("nethdr: truncated packet")
	ErrNotIPv4   = errors.New("nethdr: not an IPv4 packet")
	ErrNotUDP    = errors.New("nethdr: not a UDP datagram")
)

// Ethernet is an Ethernet II frame header.
type Ethernet struct {
	Dst       [6]byte
	Src       [6]byte
	EtherType uint16
}

// DecodeFromBytes parses the header from data.
func (e *Ethernet) DecodeFromBytes(data []byte) error {
	if len(data) < EthernetLen {
		return ErrTruncated
	}
	copy(e.Dst[:], data[0:6])
	copy(e.Src[:], data[6:12])
	e.EtherType = binary.BigEndian.Uint16(data[12:14])
	return nil
}

// SerializeTo writes the header into b, which must hold EthernetLen bytes.
func (e *Ethernet) SerializeTo(b []byte) {
	copy(b[0:6], e.Dst[:])
	copy(b[6:12], e.Src[:])
	binary.BigEndian.PutUint16(b[12:14], e.EtherType)
}

// IPv4 is an IPv4 header without options.
type IPv4 struct {
	TOS      uint8
	Length   uint16 // total length including header
	ID       uint16
	Flags    uint8
	FragOff  uint16
	TTL      uint8
	Protocol uint8
	Checksum uint16
	SrcIP    [4]byte
	DstIP    [4]byte
}

// DecodeFromBytes parses the header from data and verifies the version,
// header length, and checksum.
func (ip *IPv4) DecodeFromBytes(data []byte) error {
	if len(data) < IPv4MinLen {
		return ErrTruncated
	}
	if data[0]>>4 != 4 {
		return ErrNotIPv4
	}
	ihl := int(data[0]&0x0f) * 4
	if ihl < IPv4MinLen || len(data) < ihl {
		return fmt.Errorf("nethdr: bad IPv4 IHL %d", ihl)
	}
	ip.TOS = data[1]
	ip.Length = binary.BigEndian.Uint16(data[2:4])
	ip.ID = binary.BigEndian.Uint16(data[4:6])
	ip.Flags = data[6] >> 5
	ip.FragOff = binary.BigEndian.Uint16(data[6:8]) & 0x1fff
	ip.TTL = data[8]
	ip.Protocol = data[9]
	ip.Checksum = binary.BigEndian.Uint16(data[10:12])
	copy(ip.SrcIP[:], data[12:16])
	copy(ip.DstIP[:], data[16:20])
	if Checksum(data[:ihl]) != 0 {
		return fmt.Errorf("nethdr: bad IPv4 checksum")
	}
	return nil
}

// SerializeTo writes a 20-byte header into b and fills in the checksum.
// ip.Length must already be set to header+payload length.
func (ip *IPv4) SerializeTo(b []byte) {
	b[0] = 0x45 // version 4, IHL 5
	b[1] = ip.TOS
	binary.BigEndian.PutUint16(b[2:4], ip.Length)
	binary.BigEndian.PutUint16(b[4:6], ip.ID)
	binary.BigEndian.PutUint16(b[6:8], uint16(ip.Flags)<<13|ip.FragOff)
	b[8] = ip.TTL
	b[9] = ip.Protocol
	b[10], b[11] = 0, 0
	copy(b[12:16], ip.SrcIP[:])
	copy(b[16:20], ip.DstIP[:])
	ip.Checksum = Checksum(b[:IPv4MinLen])
	binary.BigEndian.PutUint16(b[10:12], ip.Checksum)
}

// Checksum computes the RFC 1071 Internet checksum of data.
func Checksum(data []byte) uint16 {
	var sum uint32
	for i := 0; i+1 < len(data); i += 2 {
		sum += uint32(binary.BigEndian.Uint16(data[i : i+2]))
	}
	if len(data)%2 == 1 {
		sum += uint32(data[len(data)-1]) << 8
	}
	for sum > 0xffff {
		sum = (sum >> 16) + (sum & 0xffff)
	}
	return ^uint16(sum)
}

// UDP is a UDP header.
type UDP struct {
	SrcPort  uint16
	DstPort  uint16
	Length   uint16 // header + payload
	Checksum uint16
}

// DecodeFromBytes parses the header from data.
func (u *UDP) DecodeFromBytes(data []byte) error {
	if len(data) < UDPLen {
		return ErrTruncated
	}
	u.SrcPort = binary.BigEndian.Uint16(data[0:2])
	u.DstPort = binary.BigEndian.Uint16(data[2:4])
	u.Length = binary.BigEndian.Uint16(data[4:6])
	u.Checksum = binary.BigEndian.Uint16(data[6:8])
	return nil
}

// SerializeTo writes the header into b (checksum 0: legal for IPv4 UDP).
func (u *UDP) SerializeTo(b []byte) {
	binary.BigEndian.PutUint16(b[0:2], u.SrcPort)
	binary.BigEndian.PutUint16(b[2:4], u.DstPort)
	binary.BigEndian.PutUint16(b[4:6], u.Length)
	binary.BigEndian.PutUint16(b[6:8], 0)
}

// Packet is a decoded Ethernet/IPv4/UDP packet; Payload aliases into the
// original buffer (NoCopy semantics).
type Packet struct {
	Eth     Ethernet
	IP      IPv4
	UDP     UDP
	Payload []byte
}

// Decode parses a full Ethernet/IPv4/UDP packet. It returns ErrNotIPv4 or
// ErrNotUDP for frames of other types so callers can skip them cheaply.
func (p *Packet) Decode(data []byte) error {
	if err := p.Eth.DecodeFromBytes(data); err != nil {
		return err
	}
	if p.Eth.EtherType != EtherTypeIPv4 {
		return ErrNotIPv4
	}
	if err := p.IP.DecodeFromBytes(data[EthernetLen:]); err != nil {
		return err
	}
	if p.IP.Protocol != ProtoUDP {
		return ErrNotUDP
	}
	off := EthernetLen + IPv4MinLen
	if err := p.UDP.DecodeFromBytes(data[off:]); err != nil {
		return err
	}
	end := off + int(p.UDP.Length)
	if p.UDP.Length < UDPLen || end > len(data) {
		return ErrTruncated
	}
	p.Payload = data[off+UDPLen : end]
	return nil
}

// Build serializes an Ethernet/IPv4/UDP packet around payload. Length and
// checksum fields are computed; the returned slice is freshly allocated.
func Build(eth Ethernet, ip IPv4, udp UDP, payload []byte) []byte {
	total := EthernetLen + IPv4MinLen + UDPLen + len(payload)
	buf := make([]byte, total)
	eth.EtherType = EtherTypeIPv4
	eth.SerializeTo(buf)
	ip.Protocol = ProtoUDP
	ip.Length = uint16(IPv4MinLen + UDPLen + len(payload))
	if ip.TTL == 0 {
		ip.TTL = 64
	}
	ip.SerializeTo(buf[EthernetLen:])
	udp.Length = uint16(UDPLen + len(payload))
	udp.SerializeTo(buf[EthernetLen+IPv4MinLen:])
	copy(buf[EthernetLen+IPv4MinLen+UDPLen:], payload)
	return buf
}

// IP4 is a convenience constructor for IPv4 addresses.
func IP4(a, b, c, d byte) [4]byte { return [4]byte{a, b, c, d} }
