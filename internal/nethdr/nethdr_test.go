package nethdr

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestEthernetRoundTrip(t *testing.T) {
	e := Ethernet{
		Dst:       [6]byte{1, 2, 3, 4, 5, 6},
		Src:       [6]byte{0xaa, 0xbb, 0xcc, 0xdd, 0xee, 0xff},
		EtherType: EtherTypeIPv4,
	}
	buf := make([]byte, EthernetLen)
	e.SerializeTo(buf)
	var d Ethernet
	if err := d.DecodeFromBytes(buf); err != nil {
		t.Fatal(err)
	}
	if d != e {
		t.Fatalf("round trip: %+v != %+v", d, e)
	}
	if err := d.DecodeFromBytes(buf[:10]); err != ErrTruncated {
		t.Fatalf("short frame: %v", err)
	}
}

func TestIPv4RoundTripAndChecksum(t *testing.T) {
	ip := IPv4{
		TOS: 0, Length: 100, ID: 42, TTL: 64, Protocol: ProtoUDP,
		SrcIP: IP4(10, 0, 0, 1), DstIP: IP4(192, 168, 0, 1),
	}
	buf := make([]byte, IPv4MinLen)
	ip.SerializeTo(buf)
	if Checksum(buf) != 0 {
		t.Fatal("serialized header checksum should verify to zero")
	}
	var d IPv4
	if err := d.DecodeFromBytes(buf); err != nil {
		t.Fatal(err)
	}
	if d.SrcIP != ip.SrcIP || d.DstIP != ip.DstIP || d.Length != 100 || d.Protocol != ProtoUDP {
		t.Fatalf("decode mismatch: %+v", d)
	}
	// Corrupt one byte: checksum must catch it.
	buf[15] ^= 0xff
	if err := d.DecodeFromBytes(buf); err == nil {
		t.Fatal("corrupted header should fail checksum")
	}
}

func TestIPv4RejectsNonV4(t *testing.T) {
	buf := make([]byte, IPv4MinLen)
	buf[0] = 0x65 // version 6
	var d IPv4
	if err := d.DecodeFromBytes(buf); err != ErrNotIPv4 {
		t.Fatalf("got %v, want ErrNotIPv4", err)
	}
}

func TestChecksumRFC1071Example(t *testing.T) {
	// Classic example from RFC 1071 materials.
	data := []byte{0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7}
	if got := Checksum(data); got != ^uint16(0xddf2) {
		t.Fatalf("checksum = %#x, want %#x", got, ^uint16(0xddf2))
	}
}

func TestChecksumOddLength(t *testing.T) {
	data := []byte{0x01, 0x02, 0x03}
	// Odd byte is padded with zero on the right.
	want := ^uint16(0x0102 + 0x0300)
	if got := Checksum(data); got != want {
		t.Fatalf("odd checksum = %#x, want %#x", got, want)
	}
}

func TestBuildAndDecodePacket(t *testing.T) {
	payload := []byte("hello itch")
	pkt := Build(
		Ethernet{Dst: [6]byte{1}, Src: [6]byte{2}},
		IPv4{SrcIP: IP4(10, 0, 0, 1), DstIP: IP4(10, 0, 0, 2)},
		UDP{SrcPort: 1234, DstPort: 26400},
		payload,
	)
	var p Packet
	if err := p.Decode(pkt); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(p.Payload, payload) {
		t.Fatalf("payload = %q", p.Payload)
	}
	if p.UDP.DstPort != 26400 || p.IP.DstIP != IP4(10, 0, 0, 2) {
		t.Fatalf("headers wrong: %+v", p)
	}
	if int(p.IP.Length) != IPv4MinLen+UDPLen+len(payload) {
		t.Fatalf("IP length = %d", p.IP.Length)
	}
}

func TestDecodeRejectsShortAndForeign(t *testing.T) {
	var p Packet
	if err := p.Decode(make([]byte, 5)); err != ErrTruncated {
		t.Fatalf("short: %v", err)
	}
	arp := make([]byte, 64)
	arp[12], arp[13] = 0x08, 0x06 // ARP ethertype
	if err := p.Decode(arp); err != ErrNotIPv4 {
		t.Fatalf("ARP: %v", err)
	}
	// IPv4 but TCP.
	tcp := Build(Ethernet{}, IPv4{SrcIP: IP4(1, 2, 3, 4), DstIP: IP4(4, 3, 2, 1)}, UDP{}, nil)
	tcp[EthernetLen+9] = 6 // protocol = TCP
	// Fix checksum after mutation.
	tcp[EthernetLen+10], tcp[EthernetLen+11] = 0, 0
	ck := Checksum(tcp[EthernetLen : EthernetLen+IPv4MinLen])
	tcp[EthernetLen+10] = byte(ck >> 8)
	tcp[EthernetLen+11] = byte(ck)
	if err := p.Decode(tcp); err != ErrNotUDP {
		t.Fatalf("TCP: %v", err)
	}
}

func TestBuildDecodeQuick(t *testing.T) {
	f := func(src, dst [4]byte, sport, dport uint16, payload []byte) bool {
		if len(payload) > 1400 {
			payload = payload[:1400]
		}
		pkt := Build(Ethernet{}, IPv4{SrcIP: src, DstIP: dst}, UDP{SrcPort: sport, DstPort: dport}, payload)
		var p Packet
		if err := p.Decode(pkt); err != nil {
			return false
		}
		return p.IP.SrcIP == src && p.IP.DstIP == dst &&
			p.UDP.SrcPort == sport && p.UDP.DstPort == dport &&
			bytes.Equal(p.Payload, payload)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
