package pipeline

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"camus/internal/compiler"
	"camus/internal/spec"
	"camus/internal/telemetry"
)

func mustSpec(t testing.TB) *spec.Spec {
	t.Helper()
	sp, err := spec.Parse(itchSpecSrc)
	if err != nil {
		t.Fatal(err)
	}
	return sp
}

// buildTelemetrySwitch compiles rules and installs them on a switch with
// a fresh registry attached.
func buildTelemetrySwitch(t testing.TB, rules string) (*telemetry.Registry, *compiler.Program, *Switch) {
	t.Helper()
	sp := mustSpec(t)
	prog, err := compiler.CompileSource(sp, rules, compiler.Options{})
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Telemetry = telemetry.NewRegistry()
	sw, err := New(prog, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return cfg.Telemetry, prog, sw
}

// TestProcessBatchTelemetryExact checks that the batch path records
// exactly the same fused miss-pattern telemetry as per-packet Process:
// two switches with the same program, one fed packet-by-packet and one in
// ragged batches, must expose identical packets/forwarded/dropped and
// per-table hit/miss series.
func TestProcessBatchTelemetryExact(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	rules := genDifferentialRules(r, 80, testSymbols)
	sReg, prog, single := buildTelemetrySwitch(t, rules)
	bReg, _, batched := buildTelemetrySwitch(t, rules)
	sp := mustSpec(t)

	const n = 4096
	values := make([][]uint64, n)
	now := make([]time.Duration, n)
	for i := range values {
		stock := stockVal(t, sp, testSymbols[r.Intn(len(testSymbols))])
		values[i] = packetValues(prog, r.Uint64()%600, stock, r.Uint64()%1100)
	}
	forwarded := 0
	for i := range values {
		if res := single.Process(values[i], now[i]); !res.Dropped {
			forwarded++
		}
	}
	out := make([]Result, n)
	for off := 0; off < n; {
		sz := 1 + r.Intn(97) // ragged batch sizes, including size 1
		if off+sz > n {
			sz = n - off
		}
		batched.ProcessBatch(values[off:off+sz], now[off:off+sz], out[off:off+sz])
		off += sz
	}

	sSnap, bSnap := sReg.Snapshot(), bReg.Snapshot()
	if len(sSnap.Counters) == 0 {
		t.Fatal("no telemetry series scraped")
	}
	for k, v := range sSnap.Counters {
		if bSnap.Counters[k] != v {
			t.Fatalf("telemetry divergence on %s: single=%v batch=%v", k, v, bSnap.Counters[k])
		}
	}
	if got := sSnap.Counters["camus_pipeline_packets_forwarded_total"]; got != uint64(forwarded) {
		t.Fatalf("forwarded counter %v != ground truth %d", got, forwarded)
	}
	if got := sSnap.Counters["camus_pipeline_packets_total"]; got != n {
		t.Fatalf("packets counter %v != %d", got, n)
	}
}

// TestProcessZeroAlloc asserts the per-packet hot path performs zero
// allocations in steady state, instrumented and not, single-shot and
// batched — the flattened tables' core contract.
func TestProcessZeroAlloc(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	rules := genDifferentialRules(r, 100, testSymbols)
	for _, instrumented := range []bool{false, true} {
		name := "plain"
		if instrumented {
			name = "telemetry"
		}
		t.Run(name, func(t *testing.T) {
			sp := mustSpec(t)
			prog, err := compiler.CompileSource(sp, rules, compiler.Options{})
			if err != nil {
				t.Fatal(err)
			}
			cfg := DefaultConfig()
			if instrumented {
				cfg.Telemetry = telemetry.NewRegistry()
			}
			sw, err := New(prog, cfg)
			if err != nil {
				t.Fatal(err)
			}
			vals := packetValues(prog, 100, stockVal(t, sp, "GOOGL"), 500)
			if allocs := testing.AllocsPerRun(1000, func() {
				sw.Process(vals, 0)
			}); allocs != 0 {
				t.Fatalf("Process allocates %v per op", allocs)
			}
			const batch = 32
			values := make([][]uint64, batch)
			now := make([]time.Duration, batch)
			out := make([]Result, batch)
			for i := range values {
				values[i] = vals
			}
			if allocs := testing.AllocsPerRun(200, func() {
				sw.ProcessBatch(values, now, out)
			}); allocs != 0 {
				t.Fatalf("ProcessBatch allocates %v per op", allocs)
			}
		})
	}
}

// BenchmarkProcessBatch measures the batched hot path on the Fig. 5c
// style workload at a few batch sizes.
func BenchmarkProcessBatch(b *testing.B) {
	r := rand.New(rand.NewSource(11))
	rules := genDifferentialRules(r, 200, testSymbols)
	sp := mustSpec(b)
	prog, err := compiler.CompileSource(sp, rules, compiler.Options{})
	if err != nil {
		b.Fatal(err)
	}
	sw, err := New(prog, DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	for _, batch := range []int{1, 16, 64, 256} {
		b.Run(fmt.Sprintf("batch-%d", batch), func(b *testing.B) {
			values := make([][]uint64, batch)
			now := make([]time.Duration, batch)
			out := make([]Result, batch)
			for i := range values {
				stock := stockVal(b, sp, testSymbols[r.Intn(len(testSymbols))])
				values[i] = packetValues(prog, r.Uint64()%600, stock, r.Uint64()%1100)
			}
			b.ReportAllocs()
			b.SetBytes(int64(batch * 8 * len(prog.Fields)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sw.ProcessBatch(values, now, out)
			}
		})
	}
}
