package pipeline

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"camus/internal/compiler"
	"camus/internal/spec"
)

// ddosSpecSrc is a minimal per-source heavy-hitter spec: a packet header
// with a source key and a 1ms per-source counter window.
const ddosSpecSrc = `
header_type pkt_t {
    fields {
        src: 32;
        dst: 32;
        len: 16;
    }
}
header pkt_t pkt;
@query_field(pkt.src)
@query_field(pkt.dst)
@query_field(pkt.len)
@query_counter(hits, 1000)
`

const ddosRulesSrc = `
hits[pkt.src] >= 100 : fwd(2)
hits[pkt.src] < 100 : fwd(1)
true : hits[pkt.src] <- count()
`

func buildKeyedSwitch(t testing.TB, cfg Config) (*Switch, *compiler.Program) {
	t.Helper()
	sp, err := spec.Parse(ddosSpecSrc)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := compiler.CompileSource(sp, ddosRulesSrc, compiler.Options{})
	if err != nil {
		t.Fatal(err)
	}
	sw, err := New(prog, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return sw, prog
}

func ddosValues(prog *compiler.Program, src, dst, ln uint64) []uint64 {
	vals := make([]uint64, len(prog.Fields))
	for i, f := range prog.Fields {
		switch f.Name {
		case "pkt.src":
			vals[i] = src
		case "pkt.dst":
			vals[i] = dst
		case "pkt.len":
			vals[i] = ln
		}
	}
	return vals
}

// TestKeyedCounterEndToEnd drives the compiled keyed program through the
// switch: per-source counts must gate forwarding independently per key
// and reset at the tumbling-window boundary.
func TestKeyedCounterEndToEnd(t *testing.T) {
	sw, prog := buildKeyedSwitch(t, DefaultConfig())
	window := time.Millisecond

	run := func(src uint64, n int, base time.Duration) (port1, port2 int) {
		for i := 0; i < n; i++ {
			vals := ddosValues(prog, src, 9, 64)
			res := sw.Process(vals, base+time.Duration(i)*time.Microsecond)
			if res.Dropped || len(res.Ports) != 1 {
				t.Fatalf("packet %d of src %d: unexpected result %+v", i, src, res)
			}
			switch res.Ports[0] {
			case 1:
				port1++
			case 2:
				port2++
			default:
				t.Fatalf("unexpected port %d", res.Ports[0])
			}
		}
		return
	}

	// 150 packets from src 7 in one window: reads see the pre-update
	// count, so exactly 100 pass before the threshold trips.
	p1, p2 := run(7, 150, 0)
	if p1 != 100 || p2 != 50 {
		t.Fatalf("src 7: port1=%d port2=%d, want 100/50", p1, p2)
	}
	// A different key is independent state.
	p1, p2 = run(8, 50, 200*time.Microsecond)
	if p1 != 50 || p2 != 0 {
		t.Fatalf("src 8: port1=%d port2=%d, want 50/0", p1, p2)
	}
	// Next tumbling window: src 7's count restarts.
	p1, p2 = run(7, 50, window+10*time.Microsecond)
	if p1 != 50 || p2 != 0 {
		t.Fatalf("src 7 after roll: port1=%d port2=%d, want 50/0", p1, p2)
	}
}

// TestKeyedMutexBaselineAgreement runs the same packet sequence through
// the sharded engine and the global-mutex baseline: identical decisions.
func TestKeyedMutexBaselineAgreement(t *testing.T) {
	cfgKeyed := DefaultConfig()
	cfgMutex := DefaultConfig()
	cfgMutex.StateMutex = true
	keyed, prog := buildKeyedSwitch(t, cfgKeyed)
	mutex, _ := buildKeyedSwitch(t, cfgMutex)
	if !mutex.State().MutexMode() {
		t.Fatal("StateMutex config did not select the baseline")
	}

	r := rand.New(rand.NewSource(42))
	for i := 0; i < 5000; i++ {
		src := uint64(r.Intn(16))
		now := time.Duration(i) * 3 * time.Microsecond
		a := keyed.Process(ddosValues(prog, src, 1, 64), now)
		b := mutex.Process(ddosValues(prog, src, 1, 64), now)
		if a.Dropped != b.Dropped || len(a.Ports) != len(b.Ports) || (len(a.Ports) > 0 && a.Ports[0] != b.Ports[0]) {
			t.Fatalf("packet %d (src %d): keyed=%+v mutex=%+v", i, src, a, b)
		}
	}
}

// TestKeyedCrossLaneCombine updates the same key from two lanes and
// checks reads combine counts, sums, min/max and avg across lanes —
// and that affine mode reads only the caller's lane.
func TestKeyedCrossLaneCombine(t *testing.T) {
	e := NewKeyedState(64, false, false, nil)
	e.EnsureLanes(2)
	slot := e.EnsureVar("v[pkt.src]", time.Millisecond)
	w := time.Millisecond

	e.Update(0, slot, 5, false, 10, w, 0)
	e.Update(0, slot, 5, false, 2, w, 0)
	e.Update(1, slot, 5, false, 30, w, 0)

	for _, tc := range []struct {
		agg  AggKind
		want uint64
	}{
		{AggCount, 3}, {AggSum, 42}, {AggMin, 2}, {AggMax, 30}, {AggAvg, 14}, {AggLast, 30},
	} {
		if got := e.Read(0, slot, 5, tc.agg, w, 0); got != tc.want {
			t.Errorf("combined agg %d = %d, want %d", tc.agg, got, tc.want)
		}
	}

	// Affine engine: reads see only the caller's lane.
	a := NewKeyedState(64, false, true, nil)
	a.EnsureLanes(2)
	s := a.EnsureVar("v[pkt.src]", w)
	a.Update(0, s, 5, false, 10, w, 0)
	a.Update(1, s, 5, false, 30, w, 0)
	if got := a.Read(0, s, 5, AggSum, w, 0); got != 10 {
		t.Errorf("affine lane-0 sum = %d, want 10", got)
	}
	if got := a.Read(1, s, 5, AggSum, w, 0); got != 30 {
		t.Errorf("affine lane-1 sum = %d, want 30", got)
	}
}

// TestKeyedWindowExpiryNonMutating checks reads never advance window
// state: an expired cell reads zero, and reading it (or snapshotting the
// variable) leaves the underlying cell intact for forensic scrapes.
func TestKeyedWindowExpiryNonMutating(t *testing.T) {
	e := NewKeyedState(64, false, false, nil)
	w := time.Millisecond
	slot := e.EnsureVar("v[pkt.src]", w)
	e.Update(0, slot, 5, false, 7, w, 100*time.Microsecond)

	if got := e.Read(0, slot, 5, AggSum, w, 200*time.Microsecond); got != 7 {
		t.Fatalf("in-window sum = %d, want 7", got)
	}
	// One window later the value reads zero...
	late := w + 300*time.Microsecond
	if got := e.Read(0, slot, 5, AggSum, w, late); got != 0 {
		t.Fatalf("expired sum = %d, want 0", got)
	}
	// ...but the read mutated nothing: the old window's value is still
	// there when asked for at the old time.
	if got := e.Read(0, slot, 5, AggSum, w, 200*time.Microsecond); got != 7 {
		t.Fatalf("post-expiry re-read at old now = %d, want 7 (read mutated state)", got)
	}
	if snap := e.Snapshot("v[pkt.src]", "sum", 200*time.Microsecond, 0); len(snap) != 1 || snap[0].Key != 5 || snap[0].Value != 7 {
		t.Fatalf("snapshot at old now = %+v, want key 5 value 7", snap)
	}
	// Snapshot at the late time excludes the expired key.
	if snap := e.Snapshot("v[pkt.src]", "sum", late, 0); len(snap) != 0 {
		t.Fatalf("snapshot after expiry = %+v, want empty", snap)
	}
}

// TestKeyedEviction fills a bank's probe run and checks the engine
// prefers expired cells (free) and falls back to the oldest window
// (lossy, counted).
func TestKeyedEviction(t *testing.T) {
	// Capacity equal to the probe limit: every key collides into one run.
	e := NewKeyedState(keyedProbeLimit, false, false, nil)
	w := time.Millisecond
	slot := e.EnsureVar("v[pkt.src]", w)

	for k := uint64(0); k < keyedProbeLimit; k++ {
		e.Update(0, slot, k, false, 1, w, 0)
	}
	if s := e.Stats(); s.EvictExpired != 0 || s.EvictLossy != 0 || s.Cells != keyedProbeLimit {
		t.Fatalf("after fill: %+v", s)
	}
	// Same window, one more key: must evict lossily.
	e.Update(0, slot, 1000, false, 1, w, 0)
	if s := e.Stats(); s.EvictLossy != 1 {
		t.Fatalf("expected one lossy eviction, got %+v", s)
	}
	// Next window: everything is expired, eviction is free.
	e.Update(0, slot, 2000, false, 1, w, w+time.Microsecond)
	s := e.Stats()
	if s.EvictExpired != 1 || s.EvictLossy != 1 {
		t.Fatalf("expected one expired eviction, got %+v", s)
	}
	if got := e.Read(0, slot, 2000, AggCount, w, w+time.Microsecond); got != 1 {
		t.Fatalf("evicted-slot reinsert count = %d, want 1", got)
	}
}

// TestKeyedVarsSorted checks the observability name surface.
func TestKeyedVarsSorted(t *testing.T) {
	e := NewKeyedState(64, false, false, nil)
	e.EnsureVar("zeta", 0)
	e.EnsureVar("alpha[pkt.src]", time.Millisecond)
	vars := e.Vars()
	if len(vars) != 2 || vars[0] != "alpha[pkt.src]" || vars[1] != "zeta" {
		t.Fatalf("Vars() = %v", vars)
	}
	if e.Window("alpha[pkt.src]") != time.Millisecond {
		t.Fatalf("Window() = %v", e.Window("alpha[pkt.src]"))
	}
}

// oracleCell mirrors one (slot, key) accumulator with the same
// epoch-aligned tumbling semantics, behind a plain map and mutex.
type oracleCell struct {
	win                        int64
	count, sum, min, max, last uint64
}

type oracleState struct {
	mu    sync.Mutex
	cells map[[2]uint64]*oracleCell
}

func newOracle() *oracleState { return &oracleState{cells: make(map[[2]uint64]*oracleCell)} }

func (o *oracleState) update(slot int, key uint64, zeroArg bool, arg uint64, window, now time.Duration) {
	o.mu.Lock()
	defer o.mu.Unlock()
	v := arg
	if zeroArg {
		v = 0
	}
	cur := epochStart(now, window)
	k := [2]uint64{uint64(slot), key}
	c := o.cells[k]
	if c == nil {
		c = &oracleCell{win: cur}
		o.cells[k] = c
	}
	if c.win != cur {
		*c = oracleCell{win: cur}
	}
	if c.count == 0 {
		c.min, c.max = v, v
	} else {
		if v < c.min {
			c.min = v
		}
		if v > c.max {
			c.max = v
		}
	}
	c.count++
	c.sum += v
	c.last = v
}

func (o *oracleState) read(slot int, key uint64, agg AggKind, window, now time.Duration) uint64 {
	o.mu.Lock()
	defer o.mu.Unlock()
	c := o.cells[[2]uint64{uint64(slot), key}]
	if c == nil || (window > 0 && c.win != epochStart(now, window)) {
		return 0
	}
	return foldAgg(agg, c.count, c.sum, c.min, c.max, c.last)
}

// TestKeyedDifferentialOracle is the keyed-bank quick-check: random
// keys, arguments and times driven concurrently from per-lane writer
// goroutines (the single-writer contract) against a map+mutex oracle.
// The run is sized so no lossy eviction occurs — expired-cell evictions
// are exercised and are exactly transparent under epoch-aligned windows
// — so the engine must agree with the unbounded oracle bit-for-bit.
// Run under -race this doubles as the engine's concurrency smoke:
// readers snapshot cells while writers fold into them.
func TestKeyedDifferentialOracle(t *testing.T) {
	const (
		lanes   = 4
		keys    = 64 // per lane, disjoint across lanes
		rounds  = 3  // tumbling windows crossed
		perLane = 2000
	)
	window := time.Millisecond
	e := NewKeyedState(1024, false, false, nil)
	e.EnsureLanes(lanes)
	slotA := e.EnsureVar("a[pkt.src]", window)
	slotB := e.EnsureVar("b[pkt.src]", 0) // windowless plain register
	oracle := newOracle()

	type op struct {
		slot    int
		key     uint64
		zeroArg bool
		arg     uint64
		now     time.Duration
	}
	plans := make([][]op, lanes)
	for l := 0; l < lanes; l++ {
		r := rand.New(rand.NewSource(int64(100 + l)))
		ops := make([]op, perLane)
		for i := range ops {
			slot := slotA
			if r.Intn(4) == 0 {
				slot = slotB
			}
			ops[i] = op{
				slot:    slot,
				key:     uint64(l*keys + r.Intn(keys)), // lane-disjoint keys
				zeroArg: r.Intn(3) == 0,
				arg:     uint64(r.Intn(1 << 20)),
				now:     time.Duration(r.Int63n(int64(rounds) * int64(window))),
			}
		}
		plans[l] = ops
	}

	var writers, readers sync.WaitGroup
	stop := make(chan struct{})
	// Concurrent readers: unchecked results, pure race coverage of the
	// seqlock while writers run.
	for g := 0; g < 2; g++ {
		readers.Add(1)
		go func(g int) {
			defer readers.Done()
			r := rand.New(rand.NewSource(int64(g)))
			for {
				select {
				case <-stop:
					return
				default:
				}
				e.Read(0, slotA, uint64(r.Intn(lanes*keys)), AggAvg, window, time.Duration(r.Int63n(int64(rounds)*int64(window))))
				e.Snapshot("a[pkt.src]", "count", 0, 8)
			}
		}(g)
	}
	for l := 0; l < lanes; l++ {
		writers.Add(1)
		go func(l int) {
			defer writers.Done()
			for _, o := range plans[l] {
				w := window
				if o.slot == slotB {
					w = 0
				}
				e.Update(l, o.slot, o.key, o.zeroArg, o.arg, w, o.now)
			}
		}(l)
	}
	// Drain writers, then stop readers.
	writers.Wait()
	close(stop)
	readers.Wait()

	if s := e.Stats(); s.EvictLossy != 0 {
		t.Fatalf("differential run is only exact without lossy evictions; got %+v (grow capacity or shrink keys)", s)
	}

	// Feed the oracle serially: per-key order equals the engine's (each
	// key is written by exactly one lane), and cross-key order is
	// irrelevant to per-key state.
	for l := 0; l < lanes; l++ {
		for _, o := range plans[l] {
			w := window
			if o.slot == slotB {
				w = 0
			}
			oracle.update(o.slot, o.key, o.zeroArg, o.arg, w, o.now)
		}
	}

	aggs := []AggKind{AggCount, AggSum, AggMin, AggMax, AggAvg, AggLast}
	for _, probe := range []time.Duration{
		0, window - 1, window, 2*window - 1, 2 * window, time.Duration(rounds)*window - 1,
	} {
		for key := uint64(0); key < lanes*keys; key++ {
			for _, slot := range []int{slotA, slotB} {
				w := window
				if slot == slotB {
					w = 0
				}
				for _, agg := range aggs {
					got := e.Read(0, slot, key, agg, w, probe)
					want := oracle.read(slot, key, agg, w, probe)
					if got != want {
						t.Fatalf("slot %d key %d agg %d at %v: engine %d, oracle %d", slot, key, agg, probe, got, want)
					}
				}
			}
		}
	}
}

// TestKeyedStateZeroAlloc pins the engine's packet-path allocation
// budget directly (the switch-level budget is TestProcessZeroAlloc).
func TestKeyedStateZeroAlloc(t *testing.T) {
	e := NewKeyedState(256, false, false, nil)
	e.EnsureLanes(4)
	slot := e.EnsureVar("v[pkt.src]", time.Millisecond)
	w := time.Millisecond
	var sink uint64
	if allocs := testing.AllocsPerRun(1000, func() {
		e.Update(1, slot, 77, false, 5, w, 0)
		sink += e.Read(1, slot, 77, AggAvg, w, 0)
	}); allocs != 0 {
		t.Fatalf("keyed update+read allocates %v per op", allocs)
	}
	_ = sink
}

// BenchmarkProcessBatchKeyed measures the keyed stateful hot path — one
// per-source read plus one per-source update per packet — through
// ProcessBatchOn with a multi-lane engine, so the cost includes the
// cross-lane combine. The bench-agreement test holds it to ~0 allocs/op.
func BenchmarkProcessBatchKeyed(b *testing.B) {
	cfg := DefaultConfig()
	cfg.StateLanes = 4
	sw, prog := buildKeyedSwitch(b, cfg)
	r := rand.New(rand.NewSource(17))
	for _, batch := range []int{64} {
		b.Run(fmt.Sprintf("batch-%d", batch), func(b *testing.B) {
			values := make([][]uint64, batch)
			now := make([]time.Duration, batch)
			out := make([]Result, batch)
			for i := range values {
				values[i] = ddosValues(prog, uint64(r.Intn(256)), 9, 64)
				now[i] = time.Duration(i) * time.Microsecond
			}
			b.ReportAllocs()
			b.SetBytes(int64(batch * 8 * len(prog.Fields)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sw.ProcessBatchOn(0, values, now, out)
			}
		})
	}
}
