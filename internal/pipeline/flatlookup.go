package pipeline

import (
	"math/bits"
	"sort"

	"camus/internal/compiler"
)

// The runtime lookup structures are flattened, state-indexed arrays built
// once at install time — the software analogue of the ASIC's SRAM/TCAM
// blocks. Pipeline states are dense small integers (the compiler numbers
// them consecutively; control-plane state alignment keeps them small), so
// per-state dispatch is a direct array index instead of a map probe, and
// the per-packet cost is a fixed number of O(1)/O(log n) array lookups
// with no hashing of Go map keys and no allocation.
//
// Exact entries use one of two encodings, chosen per table at build time:
//
//   - per-state sorted key runs: one shared []uint64 key array + parallel
//     []int32 next array, with a per-state offset table; a lookup binary
//     searches the state's run (SRAM-like, cache friendly for the small
//     cardinalities typical of most stages);
//   - an open-addressed flat hash table over (state, value) when the
//     table's cardinality warrants it (e.g. the 10k-symbol stock stage of
//     the Fig. 5c workload), bringing the probe cost back to O(1).
//
// Range entries are per-state sorted disjoint runs over shared lo/hi/next
// arrays (binary search, TCAM-like); wildcards are a direct state-indexed
// default array.

// openAddrMinEntries is the exact-entry count above which a table trades
// the sorted runs for an open-addressed flat table. Below it, binary
// search over at most a cache line or two of keys wins.
const openAddrMinEntries = 64

// lookupTable is the runtime form of one compiler.Table.
type lookupTable struct {
	field int
	codec *compiler.DomainCodec

	// nStates bounds the state-indexed arrays; states outside [0,nStates)
	// miss every part of the table.
	nStates int

	wild []int32 // state -> next, -1 when the state has no default

	// Exact entries, sorted-runs encoding (oaNext == nil):
	exactOff  []int32 // len nStates+1; state s's run is keys[off[s]:off[s+1]]
	exactKeys []uint64
	exactNext []int32

	// Exact entries, open-addressed encoding (oaNext != nil):
	oaMask  uint32
	oaState []int32
	oaKey   []uint64
	oaNext  []int32 // -1 marks an empty slot

	// Range entries: per-state sorted disjoint runs.
	rangeOff  []int32 // len nStates+1
	rangeLo   []uint64
	rangeHi   []uint64
	rangeNext []int32
}

type rangeEntry struct {
	lo, hi uint64
	next   int
}

// oaHash mixes (state, value) into a probe start; the multiplier spreads
// the low bits the mask keeps (splitmix64 finalizer constants).
func oaHash(state int32, value uint64) uint32 {
	h := value ^ uint64(state)*0x9e3779b97f4a7c15
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	return uint32(h)
}

func buildLookup(t *compiler.Table) lookupTable {
	lt := lookupTable{field: t.Field, codec: t.Codec}

	// Last-wins dedup mirrors the old map-based build exactly: a later
	// entry for the same (state, value) / state replaces the earlier one.
	type exactKey struct {
		state int
		value uint64
	}
	exact := make(map[exactKey]int)
	wild := make(map[int]int)
	ranges := make(map[int][]rangeEntry)
	maxState := -1
	for _, e := range t.Entries {
		if e.State > maxState {
			maxState = e.State
		}
		switch e.Kind {
		case compiler.EntryExact:
			exact[exactKey{e.State, e.Lo}] = e.Next
		case compiler.EntryWild:
			wild[e.State] = e.Next
		case compiler.EntryRange:
			ranges[e.State] = append(ranges[e.State], rangeEntry{e.Lo, e.Hi, e.Next})
		}
	}
	lt.nStates = maxState + 1
	n := lt.nStates

	lt.wild = make([]int32, n)
	for i := range lt.wild {
		lt.wild[i] = -1
	}
	for st, next := range wild {
		lt.wild[st] = int32(next)
	}

	if len(exact) >= openAddrMinEntries {
		size := 1 << bits.Len(uint(len(exact)*2-1)) // power of two, load factor <= 0.5
		lt.oaMask = uint32(size - 1)
		lt.oaState = make([]int32, size)
		lt.oaKey = make([]uint64, size)
		lt.oaNext = make([]int32, size)
		for i := range lt.oaNext {
			lt.oaNext[i] = -1
		}
		for k, next := range exact {
			h := oaHash(int32(k.state), k.value) & lt.oaMask
			for lt.oaNext[h] >= 0 {
				h = (h + 1) & lt.oaMask
			}
			lt.oaState[h] = int32(k.state)
			lt.oaKey[h] = k.value
			lt.oaNext[h] = int32(next)
		}
	} else {
		keys := make([]exactKey, 0, len(exact))
		for k := range exact {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool {
			if keys[i].state != keys[j].state {
				return keys[i].state < keys[j].state
			}
			return keys[i].value < keys[j].value
		})
		lt.exactOff = make([]int32, n+1)
		lt.exactKeys = make([]uint64, len(keys))
		lt.exactNext = make([]int32, len(keys))
		pos, st := 0, 0
		for _, k := range keys {
			for st <= k.state {
				lt.exactOff[st] = int32(pos)
				st++
			}
			lt.exactKeys[pos] = k.value
			lt.exactNext[pos] = int32(exact[k])
			pos++
		}
		for ; st <= n; st++ {
			lt.exactOff[st] = int32(pos)
		}
	}

	total := 0
	for _, rs := range ranges {
		total += len(rs)
	}
	lt.rangeOff = make([]int32, n+1)
	lt.rangeLo = make([]uint64, 0, total)
	lt.rangeHi = make([]uint64, 0, total)
	lt.rangeNext = make([]int32, 0, total)
	for st := 0; st < n; st++ {
		lt.rangeOff[st] = int32(len(lt.rangeLo))
		rs := ranges[st]
		sort.Slice(rs, func(i, j int) bool { return rs[i].lo < rs[j].lo })
		for _, r := range rs {
			lt.rangeLo = append(lt.rangeLo, r.lo)
			lt.rangeHi = append(lt.rangeHi, r.hi)
			lt.rangeNext = append(lt.rangeNext, int32(r.next))
		}
	}
	lt.rangeOff[n] = int32(len(lt.rangeLo))
	return lt
}

// lookup performs the single-stage table lookup: exact first (SRAM), then
// ranges (TCAM), then the per-state wildcard default. Zero allocation;
// states outside the table's indexed span miss.
//
//camus:hotpath
func (lt *lookupTable) lookup(state int, value uint64) (int, bool) {
	if lt.codec != nil {
		value = lt.codec.Code(value)
	}
	if uint(state) >= uint(lt.nStates) {
		return 0, false
	}
	if lt.oaNext != nil {
		h := oaHash(int32(state), value) & lt.oaMask
		for {
			next := lt.oaNext[h]
			if next < 0 {
				break
			}
			if lt.oaKey[h] == value && lt.oaState[h] == int32(state) {
				return int(next), true
			}
			h = (h + 1) & lt.oaMask
		}
	} else {
		lo, hi := int(lt.exactOff[state]), int(lt.exactOff[state+1])
		for lo < hi {
			mid := int(uint(lo+hi) >> 1)
			switch k := lt.exactKeys[mid]; {
			case value < k:
				hi = mid
			case value > k:
				lo = mid + 1
			default:
				return int(lt.exactNext[mid]), true
			}
		}
	}
	lo, hi := int(lt.rangeOff[state]), int(lt.rangeOff[state+1])-1
	for lo <= hi {
		mid := int(uint(lo+hi) >> 1)
		switch {
		case value < lt.rangeLo[mid]:
			hi = mid - 1
		case value > lt.rangeHi[mid]:
			lo = mid + 1
		default:
			return int(lt.rangeNext[mid]), true
		}
	}
	if next := lt.wild[state]; next >= 0 {
		return int(next), true
	}
	return 0, false
}

// leafTable is the flattened terminal stage: state -> action index, -1
// when the state has no leaf entry (packet drops).
type leafTable struct {
	next []int32
}

func buildLeaf(entries []compiler.Entry) leafTable {
	maxState := -1
	for _, e := range entries {
		if e.State > maxState {
			maxState = e.State
		}
	}
	lf := leafTable{next: make([]int32, maxState+1)}
	for i := range lf.next {
		lf.next[i] = -1
	}
	for _, e := range entries {
		lf.next[e.State] = int32(e.Next)
	}
	return lf
}

// lookup returns the action index for a terminal state.
//
//camus:hotpath
func (lf *leafTable) lookup(state int) (int, bool) {
	if uint(state) >= uint(len(lf.next)) {
		return 0, false
	}
	if n := lf.next[state]; n >= 0 {
		return int(n), true
	}
	return 0, false
}
