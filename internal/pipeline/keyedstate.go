package pipeline

import (
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"camus/internal/telemetry"
)

// This file implements the sharded keyed-state engine behind the
// pipeline's register stage: state addressed by (variable, flow key) —
// src_count[source] — held in flat open-addressed banks of
// cacheline-sized cells, one bank per state variable per lane.
//
// Concurrency model (the single-writer discipline of the paper's
// register ALUs, mapped onto worker lanes): every lane owns one bank per
// variable, and only that lane's worker ever writes it — the packet path
// takes no lock. Cross-lane reads and telemetry scrapes snapshot cells
// through a per-cell seqlock (sequence counter, odd while a write is in
// flight) built entirely from atomics, so the engine is race-detector
// clean. Tumbling windows are epoch-aligned (windowStart = now − now mod
// window), which makes two things exactly equivalent: a cell whose
// window has elapsed and a cell that was evicted and re-inserted — so
// window-aware eviction of expired cells is semantically free.
//
// The pre-PR-10 global-mutex path survives behind Config.StateMutex as
// the measured A/B baseline: the same banks on a single lane, every
// access serialized by one mutex.

// keyedProbeLimit bounds the linear-probe run of a bank. A probe that
// finds neither the key nor an empty cell within the run evicts: first
// choice is a cell whose window has already elapsed (its state reads as
// zero either way, so the eviction is invisible), else the cell with the
// oldest window start (lossy, counted in telemetry).
const keyedProbeLimit = 16

// defaultStateCapacity is the default number of cells per lane per
// variable. Power of two; at the flatlookup load-factor discipline this
// comfortably holds a few hundred active flows per lane per window.
const defaultStateCapacity = 1024

// AggKind is the numeric form of an aggregate fold, resolved at install
// time so the packet path switches on a small integer instead of a
// string.
type AggKind uint8

// Aggregate folds. AggLast is the plain-register default ("unknown
// aggregates return the last written value").
const (
	AggLast AggKind = iota
	AggCount
	AggSum
	AggMin
	AggMax
	AggAvg
)

// AggKindOf maps an aggregate name to its numeric fold.
func AggKindOf(name string) AggKind {
	switch name {
	case "count":
		return AggCount
	case "sum":
		return AggSum
	case "min":
		return AggMin
	case "max":
		return AggMax
	case "avg":
		return AggAvg
	}
	return AggLast
}

// bankCell is one (variable, key) state cell: a seqlock-protected
// accumulator sized to a single cache line so a probe touches one line.
// All fields are atomics — the owner lane is the only writer, and
// cross-lane readers snapshot under the sequence counter, so the race
// detector sees only atomic accesses. seq == 0 doubles as the empty
// marker (a claimed cell's seq is always ≥ 2); odd values mean a write
// is in flight.
//
//camus:cacheline 64
type bankCell struct {
	seq   atomic.Uint32
	_     uint32 // pad seq to 8 bytes
	key   atomic.Uint64
	win   atomic.Int64 // window start, ns since the epoch (time.Duration)
	count atomic.Uint64
	sum   atomic.Uint64
	min   atomic.Uint64
	max   atomic.Uint64
	last  atomic.Uint64
}

// cellSnap is a consistent snapshot of one cell.
type cellSnap struct {
	key   uint64
	win   int64
	count uint64
	sum   uint64
	min   uint64
	max   uint64
	last  uint64
}

// snapshot reads the cell consistently. ok=false means the cell is
// empty (never claimed). A reader that races the (tiny) write critical
// section retries; after a burst of retries it yields, covering the
// pathological case of a writer preempted mid-write.
//
//camus:hotpath
func (c *bankCell) snapshot(s *cellSnap) bool {
	for spins := 0; ; spins++ {
		s1 := c.seq.Load()
		if s1 == 0 {
			return false
		}
		if s1&1 == 0 {
			s.key = c.key.Load()
			s.win = c.win.Load()
			s.count = c.count.Load()
			s.sum = c.sum.Load()
			s.min = c.min.Load()
			s.max = c.max.Load()
			s.last = c.last.Load()
			if c.seq.Load() == s1 {
				return true
			}
		}
		if spins%128 == 127 {
			runtime.Gosched()
		}
	}
}

// bank is one variable's flat open-addressed cell array on one lane.
// Power-of-two sized, linear probing, following the flatlookup.go
// discipline.
type bank struct {
	cells []bankCell
	mask  uint64
}

// mixKey is the splitmix64 finalizer (same constants as flatlookup's
// oaHash), spreading flow keys across the bank.
//
//camus:hotpath
func mixKey(key uint64) uint64 {
	h := key + 0x9e3779b97f4a7c15
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	return h
}

// epochStart returns the tumbling window containing now. Windows are
// epoch-aligned so every lane and every reader derives the same boundary
// from the same clock, with no per-cell first-touch phase.
func epochStart(now, window time.Duration) int64 {
	if window <= 0 {
		return 0
	}
	return int64(now - now%window)
}

// laneStats is one lane's owner-written update/eviction accounting,
// scraped lock-free by telemetry.
type laneStats struct {
	updates      atomic.Uint64
	evictExpired atomic.Uint64
	evictLossy   atomic.Uint64
	cells        atomic.Uint64 // claimed cells across the lane's banks
}

// laneState is one single-writer lane: one bank per variable slot plus
// the lane's stats. The banks slice is republished through the atomic
// pointer when a Reinstall adds variables, so cross-lane readers never
// observe a half-grown slice header.
type laneState struct {
	banks atomic.Pointer[[]bank]
	stats laneStats
}

// varMeta is the install-time identity of one state variable slot.
type varMeta struct {
	name   string // bank identity: variable name plus "[key]" when keyed
	window time.Duration
}

// KeyedState is the switch's sharded keyed-state engine. Variables get a
// stable slot on first Ensure (surviving Reinstall, like hardware
// registers surviving table writes); lanes grow on demand to match the
// embedder's worker count. In mutex mode there is a single lane and
// every access takes the engine mutex — the retired global-lock
// discipline, kept as the measured A/B baseline.
type KeyedState struct {
	capacity  int
	mutexMode bool
	affine    bool

	mu     sync.Mutex // installs and lane growth; every access in mutex mode
	byName map[string]int
	vars   []varMeta
	lanes  atomic.Pointer[[]*laneState]

	tel *telemetry.Registry
}

// NewKeyedState builds an engine with the given cells-per-bank capacity
// (rounded up to a power of two), starting with one lane.
func NewKeyedState(capacity int, mutexMode, affine bool, tel *telemetry.Registry) *KeyedState {
	if capacity <= 0 {
		capacity = defaultStateCapacity
	}
	cap2 := 1
	for cap2 < capacity {
		cap2 <<= 1
	}
	e := &KeyedState{capacity: cap2, mutexMode: mutexMode, affine: affine, byName: make(map[string]int), tel: tel}
	lanes := []*laneState{e.newLane(0)}
	e.lanes.Store(&lanes)
	return e
}

// newLane allocates a lane with banks for every known variable and
// registers its telemetry series. Callers hold e.mu (or are the
// constructor).
func (e *KeyedState) newLane(id int) *laneState {
	ls := &laneState{}
	banks := make([]bank, len(e.vars))
	for i := range banks {
		banks[i] = e.newBank()
	}
	ls.banks.Store(&banks)
	if e.tel != nil {
		lane := telemetry.L("lane", itoa(id))
		e.tel.CounterFunc("camus_pipeline_register_updates_total", func() float64 {
			return float64(ls.stats.updates.Load())
		}, lane)
		e.tel.CounterFunc("camus_pipeline_register_evictions_total", func() float64 {
			return float64(ls.stats.evictExpired.Load())
		}, lane, telemetry.L("kind", "expired"))
		e.tel.CounterFunc("camus_pipeline_register_evictions_total", func() float64 {
			return float64(ls.stats.evictLossy.Load())
		}, lane, telemetry.L("kind", "lossy"))
		e.tel.GaugeFunc("camus_pipeline_register_cells", func() float64 {
			return float64(ls.stats.cells.Load())
		}, lane)
	}
	return ls
}

func (e *KeyedState) newBank() bank {
	return bank{cells: make([]bankCell, e.capacity), mask: uint64(e.capacity - 1)}
}

// itoa is a tiny allocation-free-enough int formatter for lane labels
// (lane creation is cold).
func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

// Lanes returns the current lane count.
func (e *KeyedState) Lanes() int { return len(*e.lanes.Load()) }

// MutexMode reports whether the engine runs the global-mutex baseline.
func (e *KeyedState) MutexMode() bool { return e.mutexMode }

// EnsureLanes grows the engine to at least n single-writer lanes. The
// embedder must call it (once, at worker startup) before issuing
// ProcessBatchOn for a lane index — the engine also self-heals on a
// too-large lane index, but only growth through here is race-free
// against in-flight packets, because the lane slice is copied and
// republished whole. Mutex mode keeps a single lane regardless: all
// workers funnel into the one global-lock bank set.
func (e *KeyedState) EnsureLanes(n int) {
	if e.mutexMode || n <= e.Lanes() {
		return
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	old := *e.lanes.Load()
	if n <= len(old) {
		return
	}
	lanes := append(append([]*laneState(nil), old...), nil)[:len(old)]
	for id := len(old); id < n; id++ {
		lanes = append(lanes, e.newLane(id))
	}
	e.lanes.Store(&lanes)
}

// EnsureVar returns the stable slot of a state variable, allocating a
// bank on every lane on first use. Identity is the variable name plus
// its "[key-field]" suffix; the first caller's window wins (reads are
// resolved before updates at install time, so a declared window takes
// precedence over the aggregate default).
func (e *KeyedState) EnsureVar(name string, window time.Duration) int {
	e.mu.Lock()
	defer e.mu.Unlock()
	if slot, ok := e.byName[name]; ok {
		return slot
	}
	slot := len(e.vars)
	e.byName[name] = slot
	e.vars = append(e.vars, varMeta{name: name, window: window})
	for _, ls := range *e.lanes.Load() {
		old := *ls.banks.Load()
		banks := append(append([]bank(nil), old...), e.newBank())
		ls.banks.Store(&banks)
	}
	return slot
}

// Vars returns the allocated variable identities, sorted. The name list
// is snapshotted under the lock and sorted outside it.
func (e *KeyedState) Vars() []string {
	e.mu.Lock()
	out := make([]string, len(e.vars))
	for i, v := range e.vars {
		out[i] = v.name
	}
	e.mu.Unlock()
	sort.Strings(out)
	return out
}

// Window returns the tumbling window of a variable identity (0 if
// unknown or windowless).
func (e *KeyedState) Window(name string) time.Duration {
	e.mu.Lock()
	defer e.mu.Unlock()
	if slot, ok := e.byName[name]; ok {
		return e.vars[slot].window
	}
	return 0
}

// Update folds one sample into (slot, key) on the caller's lane — the
// single-writer fast path: a linear probe over cacheline cells and a
// seqlock-bracketed store burst, no lock taken. zeroArg is the count()
// fold, which ignores the argument value. In mutex mode the engine
// serializes on its mutex and uses lane 0, whatever lane the caller
// names — the A/B baseline.
//
//camus:hotpath bench=BenchmarkProcessBatchKeyed
func (e *KeyedState) Update(lane, slot int, key uint64, zeroArg bool, arg uint64, window, now time.Duration) {
	if e.mutexMode {
		e.mu.Lock()
		ls := (*e.lanes.Load())[0]
		e.updateLane(ls, slot, key, zeroArg, arg, window, now)
		e.mu.Unlock()
		return
	}
	lanes := *e.lanes.Load()
	if lane >= len(lanes) {
		// Misuse guard (EnsureLanes not called): grow, then retry.
		//camus:alloc-ok cold self-heal, runs once per missing lane, never in steady state
		e.EnsureLanes(lane + 1)
		lanes = *e.lanes.Load()
	}
	e.updateLane(lanes[lane], slot, key, zeroArg, arg, window, now)
}

// updateLane performs the probe-and-fold on one lane's bank. The caller
// is the lane's single writer (or holds the engine mutex in mutex mode).
//
//camus:hotpath
func (e *KeyedState) updateLane(ls *laneState, slot int, key uint64, zeroArg bool, arg uint64, window, now time.Duration) {
	b := &(*ls.banks.Load())[slot]
	cur := epochStart(now, window)
	h := mixKey(key)
	var cell *bankCell
	var victim *bankCell
	victimWin := int64(0)
	victimExpired := false
	claimed := false
	for i := uint64(0); i < keyedProbeLimit; i++ {
		c := &b.cells[(h+i)&b.mask]
		seq := c.seq.Load()
		if seq == 0 {
			cell = c
			claimed = true
			break
		}
		if c.key.Load() == key {
			cell = c
			break
		}
		// Victim candidates for a full run: an expired-window cell is a
		// free eviction (its state reads zero either way); otherwise the
		// oldest window start loses.
		w := c.win.Load()
		expired := window > 0 && w != cur
		switch {
		case victim == nil,
			expired && !victimExpired,
			expired == victimExpired && w < victimWin:
			victim, victimWin, victimExpired = c, w, expired
		}
	}
	if cell == nil {
		cell = victim
		if victimExpired {
			ls.stats.evictExpired.Add(1)
		} else {
			ls.stats.evictLossy.Add(1)
		}
	}
	v := arg
	if zeroArg {
		v = 0
	}
	cell.seq.Add(1) // odd: write in flight
	if claimed || cell.key.Load() != key || cell.win.Load() != cur {
		// Fresh claim, eviction, or window roll: reset the accumulators.
		cell.key.Store(key)
		cell.win.Store(cur)
		cell.count.Store(0)
		cell.sum.Store(0)
		cell.min.Store(0)
		cell.max.Store(0)
		cell.last.Store(0)
	}
	if cnt := cell.count.Load(); cnt == 0 {
		cell.min.Store(v)
		cell.max.Store(v)
	} else {
		if v < cell.min.Load() {
			cell.min.Store(v)
		}
		if v > cell.max.Load() {
			cell.max.Store(v)
		}
	}
	cell.count.Add(1)
	cell.sum.Add(v)
	cell.last.Store(v)
	cell.seq.Add(1) // even: published
	if claimed {
		ls.stats.cells.Add(1)
	}
	ls.stats.updates.Add(1)
}

// Read serves the aggregate of (slot, key) for the current window. The
// read is non-mutating everywhere — window expiry is decided by
// comparing a cell's window start against the reader's epoch, never by
// rewriting the cell — so telemetry scrapes and admin snapshots reuse
// this path without advancing state. Outside affine mode the read
// combines the key's cells across every lane (counts and sums add,
// min/max fold, avg divides the totals, last takes the newest window,
// highest lane on a tie); affine mode — for embedders that shard packets
// by the same key — reads only the caller's lane. In mutex mode the read
// locks and serves lane 0, the baseline discipline.
//
//camus:hotpath bench=BenchmarkProcessBatchKeyed
func (e *KeyedState) Read(lane, slot int, key uint64, agg AggKind, window, now time.Duration) uint64 {
	if e.mutexMode {
		e.mu.Lock()
		v := readLane((*e.lanes.Load())[0], slot, key, agg, window, now)
		e.mu.Unlock()
		return v
	}
	lanes := *e.lanes.Load()
	if e.affine {
		if lane >= len(lanes) {
			//camus:alloc-ok cold self-heal, runs once per missing lane, never in steady state
			e.EnsureLanes(lane + 1)
			lanes = *e.lanes.Load()
		}
		return readLane(lanes[lane], slot, key, agg, window, now)
	}
	cur := epochStart(now, window)
	var snap cellSnap
	var count, sum, min, max, last uint64
	lastWin := int64(0)
	seen := false
	for _, ls := range lanes {
		if !probeLane(ls, slot, key, &snap) {
			continue
		}
		if window > 0 && snap.win != cur {
			continue // expired (or future) window: contributes nothing
		}
		count += snap.count
		sum += snap.sum
		if !seen || snap.min < min {
			min = snap.min
		}
		if !seen || snap.max > max {
			max = snap.max
		}
		if !seen || snap.win >= lastWin {
			last, lastWin = snap.last, snap.win
		}
		seen = true
	}
	return foldAgg(agg, count, sum, min, max, last)
}

// probeLane finds the key's cell in one lane's bank and snapshots it.
//
//camus:hotpath
func probeLane(ls *laneState, slot int, key uint64, snap *cellSnap) bool {
	b := &(*ls.banks.Load())[slot]
	h := mixKey(key)
	for i := uint64(0); i < keyedProbeLimit; i++ {
		c := &b.cells[(h+i)&b.mask]
		if !c.snapshot(snap) {
			return false // empty cell terminates the probe run
		}
		if snap.key == key {
			return true
		}
	}
	return false
}

// readLane serves one lane's aggregate (affine and mutex modes).
//
//camus:hotpath
func readLane(ls *laneState, slot int, key uint64, agg AggKind, window, now time.Duration) uint64 {
	var snap cellSnap
	if !probeLane(ls, slot, key, &snap) {
		return 0
	}
	if window > 0 && snap.win != epochStart(now, window) {
		return 0
	}
	return foldAgg(agg, snap.count, snap.sum, snap.min, snap.max, snap.last)
}

// foldAgg serves one aggregate from combined accumulators.
//
//camus:hotpath
func foldAgg(agg AggKind, count, sum, min, max, last uint64) uint64 {
	switch agg {
	case AggCount:
		return count
	case AggSum:
		return sum
	case AggMin:
		return min
	case AggMax:
		return max
	case AggAvg:
		if count == 0 {
			return 0
		}
		return sum / count
	}
	return last
}

// KeyedValue is one key's combined state in a Snapshot.
type KeyedValue struct {
	Key   uint64
	Value uint64
}

// Snapshot returns the per-key aggregate values of a variable identity
// across all lanes for the window containing now, sorted by key,
// truncated to max entries when max > 0. Like Read it never mutates
// state — this is the observability surface (admin scrapes, tests).
func (e *KeyedState) Snapshot(name, agg string, now time.Duration, max int) []KeyedValue {
	e.mu.Lock()
	slot, ok := e.byName[name]
	var window time.Duration
	if ok {
		window = e.vars[slot].window
	}
	e.mu.Unlock()
	if !ok {
		return nil
	}
	kind := AggKindOf(agg)
	cur := epochStart(now, window)
	keys := make(map[uint64]struct{})
	var snap cellSnap
	lanes := *e.lanes.Load()
	for _, ls := range lanes {
		b := &(*ls.banks.Load())[slot]
		for i := range b.cells {
			if !b.cells[i].snapshot(&snap) {
				continue
			}
			if window > 0 && snap.win != cur {
				continue
			}
			keys[snap.key] = struct{}{}
		}
	}
	out := make([]KeyedValue, 0, len(keys))
	for k := range keys {
		out = append(out, KeyedValue{Key: k})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	if max > 0 && len(out) > max {
		out = out[:max]
	}
	for i := range out {
		// Reads combine across lanes exactly like the packet path; mutex
		// mode has a single lane, so lane 0 is correct there too.
		out[i].Value = e.Read(0, slot, out[i].Key, kind, window, now)
	}
	return out
}

// KeyedCell is one key's full accumulator state in a SnapshotCells
// dump, lane-combined like the packet path's reads.
type KeyedCell struct {
	Key   uint64 `json:"key"`
	Count uint64 `json:"count"`
	Sum   uint64 `json:"sum"`
	Min   uint64 `json:"min"`
	Max   uint64 `json:"max"`
	Last  uint64 `json:"last"`
}

// SnapshotCells is Snapshot with every aggregate materialized per key —
// the admin endpoint's document. Non-mutating like Snapshot.
func (e *KeyedState) SnapshotCells(name string, now time.Duration, max int) []KeyedCell {
	keys := e.Snapshot(name, "count", now, max)
	if keys == nil {
		return nil
	}
	e.mu.Lock()
	slot := e.byName[name]
	window := e.vars[slot].window
	e.mu.Unlock()
	out := make([]KeyedCell, len(keys))
	for i, kv := range keys {
		out[i] = KeyedCell{
			Key:   kv.Key,
			Count: kv.Value,
			Sum:   e.Read(0, slot, kv.Key, AggSum, window, now),
			Min:   e.Read(0, slot, kv.Key, AggMin, window, now),
			Max:   e.Read(0, slot, kv.Key, AggMax, window, now),
			Last:  e.Read(0, slot, kv.Key, AggLast, window, now),
		}
	}
	return out
}

// VarDump is one state variable's scrape document.
type VarDump struct {
	Name     string      `json:"name"`
	WindowUS int64       `json:"window_us"`
	Cells    []KeyedCell `json:"cells"`
}

// RegisterDump is the JSON document behind the /debug/registers admin
// route: engine accounting plus a bounded per-variable cell dump for the
// window containing now. Building it never takes the packet path's
// write side — every cell is read through the seqlock.
type RegisterDump struct {
	Stats Stats     `json:"stats"`
	Vars  []VarDump `json:"vars"`
}

// DebugDump walks Vars() and snapshots each one, at most maxPerVar cells
// per variable (0 = unbounded).
func (e *KeyedState) DebugDump(now time.Duration, maxPerVar int) RegisterDump {
	d := RegisterDump{Stats: e.Stats()}
	for _, name := range e.Vars() {
		d.Vars = append(d.Vars, VarDump{
			Name:     name,
			WindowUS: e.Window(name).Microseconds(),
			Cells:    e.SnapshotCells(name, now, maxPerVar),
		})
	}
	return d
}

// Stats is the engine's aggregate accounting across lanes.
type Stats struct {
	Lanes        int
	Updates      uint64
	EvictExpired uint64
	EvictLossy   uint64
	Cells        uint64
}

// Stats sums the per-lane counters (telemetry exports them per lane).
func (e *KeyedState) Stats() Stats {
	lanes := *e.lanes.Load()
	s := Stats{Lanes: len(lanes)}
	for _, ls := range lanes {
		s.Updates += ls.stats.updates.Load()
		s.EvictExpired += ls.stats.evictExpired.Load()
		s.EvictLossy += ls.stats.evictLossy.Load()
		s.Cells += ls.stats.cells.Load()
	}
	return s
}
