package pipeline

import (
	"sort"

	"camus/internal/compiler"
)

// This file keeps the pre-flattening map-based lookup implementation as a
// build-time test helper: it is compiled only into test binaries and
// serves as a second reference (alongside compiler.Table.Lookup and
// Program.Evaluate) for differential tests of the flattened arrays in
// flatlookup.go. Its semantics — last-wins entry dedup, exact before
// range before wildcard, binary search over sorted disjoint ranges — are
// the contract the flat tables must reproduce bit-identically.

type mapExactKey struct {
	state int
	value uint64
}

// mapLookupTable is the old runtime form of one compiler.Table: three Go
// maps probed per stage.
type mapLookupTable struct {
	field  int
	codec  *compiler.DomainCodec
	exact  map[mapExactKey]int  // (state, value) -> next
	wild   map[int]int          // state -> next
	ranges map[int][]rangeEntry // state -> sorted disjoint ranges
}

func buildMapLookup(t *compiler.Table) mapLookupTable {
	lt := mapLookupTable{
		field:  t.Field,
		codec:  t.Codec,
		exact:  make(map[mapExactKey]int),
		wild:   make(map[int]int),
		ranges: make(map[int][]rangeEntry),
	}
	for _, e := range t.Entries {
		switch e.Kind {
		case compiler.EntryExact:
			lt.exact[mapExactKey{e.State, e.Lo}] = e.Next
		case compiler.EntryWild:
			lt.wild[e.State] = e.Next
		case compiler.EntryRange:
			lt.ranges[e.State] = append(lt.ranges[e.State], rangeEntry{e.Lo, e.Hi, e.Next})
		}
	}
	for st := range lt.ranges {
		rs := lt.ranges[st]
		sort.Slice(rs, func(i, j int) bool { return rs[i].lo < rs[j].lo })
		lt.ranges[st] = rs
	}
	return lt
}

func (lt *mapLookupTable) lookup(state int, value uint64) (int, bool) {
	if lt.codec != nil {
		value = lt.codec.Code(value)
	}
	if next, ok := lt.exact[mapExactKey{state, value}]; ok {
		return next, true
	}
	if rs, ok := lt.ranges[state]; ok {
		lo, hi := 0, len(rs)-1
		for lo <= hi {
			mid := (lo + hi) / 2
			switch {
			case value < rs[mid].lo:
				hi = mid - 1
			case value > rs[mid].hi:
				lo = mid + 1
			default:
				return rs[mid].next, true
			}
		}
	}
	if next, ok := lt.wild[state]; ok {
		return next, true
	}
	return 0, false
}
