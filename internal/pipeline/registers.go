package pipeline

import (
	"sort"
	"sync"
	"time"
)

// Register is one stateful cell: it accumulates packet field values within
// a tumbling window and serves the aggregate configured by the reading
// subscription. The static compiler pre-allocates a block of these; the
// dynamic compiler links subscription actions to them (§3.1).
type Register struct {
	Window time.Duration

	windowStart time.Duration
	count       uint64
	sum         uint64
	min         uint64
	max         uint64
	last        uint64
	started     bool
}

// roll resets the register when the tumbling window has elapsed.
func (r *Register) roll(now time.Duration) {
	if !r.started {
		r.windowStart = now
		r.started = true
		return
	}
	if r.Window > 0 && now-r.windowStart >= r.Window {
		// Tumbling (non-overlapping) window: state resets at each
		// boundary. Skip forward over idle windows.
		elapsed := now - r.windowStart
		r.windowStart += elapsed - elapsed%r.Window
		r.count, r.sum, r.min, r.max, r.last = 0, 0, 0, 0, 0
	}
}

// Update folds a new sample into the register.
func (r *Register) Update(v uint64, now time.Duration) {
	r.roll(now)
	if r.count == 0 {
		r.min, r.max = v, v
	} else {
		if v < r.min {
			r.min = v
		}
		if v > r.max {
			r.max = v
		}
	}
	r.count++
	r.sum += v
	r.last = v
}

// Value serves an aggregate over the current window. Unknown aggregates
// return the last written value (plain register semantics).
func (r *Register) Value(agg string, now time.Duration) uint64 {
	r.roll(now)
	switch agg {
	case "count":
		return r.count
	case "sum":
		return r.sum
	case "min":
		return r.min
	case "max":
		return r.max
	case "avg":
		if r.count == 0 {
			return 0
		}
		return r.sum / r.count
	default:
		return r.last
	}
}

// Count returns the number of samples in the current window.
func (r *Register) Count(now time.Duration) uint64 {
	r.roll(now)
	return r.count
}

// Peek is Value without the roll: it decides window expiry by comparing
// now against the window bounds and never writes the register, so an
// observability scrape cannot advance (or reset) state the packet path
// is accumulating. A peek past the window boundary reads zero — exactly
// what a Value call at that now would return after rolling — while the
// register's contents stay intact.
func (r *Register) Peek(agg string, now time.Duration) uint64 {
	if !r.started || (r.Window > 0 && now-r.windowStart >= r.Window) {
		return 0
	}
	switch agg {
	case "count":
		return r.count
	case "sum":
		return r.sum
	case "min":
		return r.min
	case "max":
		return r.max
	case "avg":
		if r.count == 0 {
			return 0
		}
		return r.sum / r.count
	default:
		return r.last
	}
}

// RegisterFile is the switch's block of stateful registers, addressed by
// state-variable name.
//
// Access through Read/Update is serialized by an internal mutex — the
// software analogue of the ASIC's register ALUs, where packets touching
// the same register are serialized by the hardware. Stateless programs
// never reach the lock, so the common path stays lock-free; with it,
// packets carrying register reads/updates may be processed from many
// goroutines (the sharded dataplane workers) without external
// serialization.
type RegisterFile struct {
	mu   sync.RWMutex // packet path writes; Peek/Names take the read side
	regs map[string]*Register
}

// NewRegisterFile returns an empty register file.
func NewRegisterFile() *RegisterFile {
	return &RegisterFile{regs: make(map[string]*Register)}
}

// Ensure allocates a register if absent and returns it. The returned
// register is not synchronized; concurrent packet processing must go
// through Read/Update.
func (f *RegisterFile) Ensure(name string, window time.Duration) *Register {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.ensureLocked(name, window)
}

func (f *RegisterFile) ensureLocked(name string, window time.Duration) *Register {
	if r, ok := f.regs[name]; ok {
		return r
	}
	r := &Register{Window: window}
	f.regs[name] = r
	return r
}

// Read returns the aggregate value of a register, zero if the register
// was never written.
func (f *RegisterFile) Read(name, agg string, now time.Duration) uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	r, ok := f.regs[name]
	if !ok {
		return 0
	}
	return r.Value(agg, now)
}

// Update folds a sample into a register, allocating it on first use (the
// dynamic compiler's late linking of actions to the pre-allocated block).
func (f *RegisterFile) Update(name, agg string, v uint64, now time.Duration) {
	f.mu.Lock()
	defer f.mu.Unlock()
	r := f.ensureLocked(name, AggWindow)
	updateLocked(r, agg, v, now)
}

// ReadReg is Read for a register already resolved through Ensure — the
// packet path's form, which skips the name-map probe but still serializes
// on the file's mutex (the register-ALU contract).
//
//camus:hotpath
func (f *RegisterFile) ReadReg(r *Register, agg string, now time.Duration) uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return r.Value(agg, now)
}

// UpdateReg is Update for a register already resolved through Ensure:
// no map probe, and no first-touch allocation branch on the packet path.
//
//camus:hotpath
func (f *RegisterFile) UpdateReg(r *Register, agg string, v uint64, now time.Duration) {
	f.mu.Lock()
	defer f.mu.Unlock()
	updateLocked(r, agg, v, now)
}

func updateLocked(r *Register, agg string, v uint64, now time.Duration) {
	switch agg {
	case "count":
		r.Update(0, now) // count ignores the argument value
	default:
		r.Update(v, now)
	}
}

// Names returns the allocated register names, sorted. Only the map
// iteration holds the file mutex; the sort happens on the snapshot
// outside the lock, so a scrape enumerating a large file does not
// stall the packet path for the duration of the sort.
func (f *RegisterFile) Names() []string {
	f.mu.RLock()
	out := make([]string, 0, len(f.regs))
	for n := range f.regs {
		out = append(out, n)
	}
	f.mu.RUnlock()
	sort.Strings(out)
	return out
}

// Peek serves an aggregate without advancing window state: where Read
// rolls the register's tumbling window forward (a write), Peek only
// compares timestamps, reporting zero for a window that has elapsed and
// leaving the stale contents in place for forensic inspection at an
// earlier now. This is the scrape-time form — observability reads must
// not mutate what they observe.
func (f *RegisterFile) Peek(name, agg string, now time.Duration) uint64 {
	f.mu.RLock()
	defer f.mu.RUnlock()
	r, ok := f.regs[name]
	if !ok {
		return 0
	}
	return r.Peek(agg, now)
}
