package pipeline

import (
	"testing"
	"time"
)

// TestRegisterRollIdleWindows pins the idle-window skip: after a gap of
// several windows the register must land on the boundary grid aligned
// to its first touch, not on the arrival time of the packet that ended
// the idle stretch.
func TestRegisterRollIdleWindows(t *testing.T) {
	w := 100 * time.Microsecond
	r := &Register{Window: w}

	// First touch at 30µs starts the grid: boundaries at 130, 230, ...
	r.Update(5, 30*time.Microsecond)
	if got := r.Value("count", 40*time.Microsecond); got != 1 {
		t.Fatalf("count in first window = %d, want 1", got)
	}

	// Idle for 3.5 windows. The next sample must open the window
	// [330µs, 430µs) — 30µs + 3×100µs — and contain only itself.
	r.Update(7, 380*time.Microsecond)
	if got := r.Value("count", 380*time.Microsecond); got != 1 {
		t.Fatalf("count after idle skip = %d, want 1", got)
	}
	if got := r.Value("sum", 380*time.Microsecond); got != 7 {
		t.Fatalf("sum after idle skip = %d, want 7", got)
	}
	// 429µs is inside the same window; 430µs is the next boundary.
	if got := r.Value("count", 429*time.Microsecond); got != 1 {
		t.Fatalf("count at 429µs = %d, want 1 (window should reach 430µs)", got)
	}
	if got := r.Value("count", 430*time.Microsecond); got != 0 {
		t.Fatalf("count at 430µs = %d, want 0 (boundary must roll)", got)
	}
}

// TestRegisterRollExactBoundary checks a sample landing exactly on a
// boundary opens the new window rather than extending the old one.
func TestRegisterRollExactBoundary(t *testing.T) {
	w := 100 * time.Microsecond
	r := &Register{Window: w}
	r.Update(1, 0)
	r.Update(2, 99*time.Microsecond)
	if got := r.Value("count", 99*time.Microsecond); got != 2 {
		t.Fatalf("count before boundary = %d, want 2", got)
	}
	r.Update(3, 100*time.Microsecond)
	if got := r.Value("count", 100*time.Microsecond); got != 1 {
		t.Fatalf("count at boundary = %d, want 1", got)
	}
	if got := r.Value("last", 100*time.Microsecond); got != 3 {
		t.Fatalf("last at boundary = %d, want 3", got)
	}
}

// TestRegisterPeekNonMutating checks the observability contract: a Peek
// past the window boundary reads zero but does not roll the register, so
// the accumulated window is still intact for the packet path (and for
// peeks at in-window timestamps).
func TestRegisterPeekNonMutating(t *testing.T) {
	w := 100 * time.Microsecond
	r := &Register{Window: w}
	r.Update(10, 0)
	r.Update(4, 10*time.Microsecond)

	for _, tc := range []struct {
		agg  string
		want uint64
	}{
		{"count", 2}, {"sum", 14}, {"min", 4}, {"max", 10}, {"avg", 7}, {"last", 4},
	} {
		if got := r.Peek(tc.agg, 50*time.Microsecond); got != tc.want {
			t.Errorf("Peek(%s) = %d, want %d", tc.agg, got, tc.want)
		}
	}

	// A scrape lands two windows later: it must see zero...
	if got := r.Peek("sum", 250*time.Microsecond); got != 0 {
		t.Fatalf("expired Peek = %d, want 0", got)
	}
	// ...without having reset anything: the old window is still whole.
	if got := r.Peek("sum", 50*time.Microsecond); got != 14 {
		t.Fatalf("Peek mutated the register: sum now %d, want 14", got)
	}
	// Contrast with Value, which rolls (the packet-path behaviour).
	if got := r.Value("sum", 250*time.Microsecond); got != 0 {
		t.Fatalf("Value after boundary = %d, want 0", got)
	}
	if got := r.Peek("sum", 50*time.Microsecond); got != 0 {
		t.Fatalf("Value should have rolled; Peek sees %d, want 0", got)
	}

	// Never-written registers peek zero for every aggregate.
	var fresh Register
	if got := fresh.Peek("count", 0); got != 0 {
		t.Fatalf("fresh Peek = %d, want 0", got)
	}
}

// TestRegisterFilePeek covers the file-level scrape path: absent names
// read zero and present names serve the non-mutating view.
func TestRegisterFilePeek(t *testing.T) {
	f := NewRegisterFile()
	f.Update("c", "count", 1, 0)
	f.Update("c", "count", 1, 10*time.Microsecond)
	if got := f.Peek("c", "count", 20*time.Microsecond); got != 2 {
		t.Fatalf("Peek(c) = %d, want 2", got)
	}
	if got := f.Peek("missing", "count", 0); got != 0 {
		t.Fatalf("Peek(missing) = %d, want 0", got)
	}
	// A late peek must not roll the window out from under the packet path.
	if got := f.Peek("c", "count", 20*time.Microsecond+AggWindow); got != 0 {
		t.Fatalf("expired file Peek = %d, want 0", got)
	}
	if got := f.Peek("c", "count", 20*time.Microsecond); got != 2 {
		t.Fatalf("Peek mutated file register: %d, want 2", got)
	}
}
