package pipeline

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"camus/internal/compiler"
)

// TestLookupTableMatchesCompilerLookup checks the optimized runtime
// lookup structures (hash maps + binary search) against the compiler's
// reference linear-scan Lookup on random programs and probes.
func TestLookupTableMatchesCompilerLookup(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	for trial := 0; trial < 10; trial++ {
		var b strings.Builder
		for i := 0; i < 30; i++ {
			sym := testSymbols[r.Intn(len(testSymbols))]
			switch r.Intn(3) {
			case 0:
				fmt.Fprintf(&b, "stock == %s : fwd(%d)\n", sym, 1+r.Intn(8))
			case 1:
				fmt.Fprintf(&b, "stock == %s && price > %d : fwd(%d)\n", sym, r.Intn(1000), 1+r.Intn(8))
			default:
				fmt.Fprintf(&b, "price < %d && shares > %d : fwd(%d)\n", r.Intn(1000), r.Intn(500), 1+r.Intn(8))
			}
		}
		sw, prog, _ := buildSwitch(t, b.String())
		for fi, tab := range prog.Tables {
			lt := sw.inst.Load().tables[fi]
			for probe := 0; probe < 500; probe++ {
				state := r.Intn(prog.NumStates() + 2)
				value := r.Uint64()
				if max := prog.Fields[fi].Max; max != ^uint64(0) {
					value %= max + 1
				}
				wantE, wantOK := tab.Lookup(state, value)
				gotNext, gotOK := lt.lookup(state, value)
				if gotOK != wantOK {
					t.Fatalf("trial %d table %s: hit mismatch at state=%d value=%d", trial, tab.Name, state, value)
				}
				if gotOK && gotNext != wantE.Next {
					t.Fatalf("trial %d table %s: next %d != %d at state=%d value=%d",
						trial, tab.Name, gotNext, wantE.Next, state, value)
				}
			}
		}
	}
}

// TestReinstallPreservesRegisters checks that a control-plane update does
// not clear hardware register state.
func TestReinstallPreservesRegisters(t *testing.T) {
	sw, prog, sp := buildSwitch(t, "stock == GOOGL && avg(price) > 50 : fwd(1)")
	googl := stockVal(t, sp, "GOOGL")
	// Prime the average.
	sw.Process(packetValues(prog, 0, googl, 100), 0)

	newProg, err := compiler.CompileSource(prog.Spec,
		"stock == GOOGL && avg(price) > 50 : fwd(1)\nstock == AAPL : fwd(2)\n", compiler.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := sw.Reinstall(newProg); err != nil {
		t.Fatal(err)
	}
	// The primed average must survive: next GOOGL forwards immediately.
	res := sw.Process(packetValues(newProg, 0, googl, 100), 1000)
	if res.Dropped {
		t.Fatalf("register state lost across reinstall: %+v", res)
	}
}
