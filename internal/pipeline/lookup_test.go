package pipeline

import (
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"time"

	"camus/internal/compiler"
)

// TestLookupTableMatchesCompilerLookup checks the optimized runtime
// lookup structures (hash maps + binary search) against the compiler's
// reference linear-scan Lookup on random programs and probes.
func TestLookupTableMatchesCompilerLookup(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	for trial := 0; trial < 10; trial++ {
		var b strings.Builder
		for i := 0; i < 30; i++ {
			sym := testSymbols[r.Intn(len(testSymbols))]
			switch r.Intn(3) {
			case 0:
				fmt.Fprintf(&b, "stock == %s : fwd(%d)\n", sym, 1+r.Intn(8))
			case 1:
				fmt.Fprintf(&b, "stock == %s && price > %d : fwd(%d)\n", sym, r.Intn(1000), 1+r.Intn(8))
			default:
				fmt.Fprintf(&b, "price < %d && shares > %d : fwd(%d)\n", r.Intn(1000), r.Intn(500), 1+r.Intn(8))
			}
		}
		sw, prog, _ := buildSwitch(t, b.String())
		for fi, tab := range prog.Tables {
			lt := sw.inst.Load().tables[fi]
			for probe := 0; probe < 500; probe++ {
				state := r.Intn(prog.NumStates() + 2)
				value := r.Uint64()
				if max := prog.Fields[fi].Max; max != ^uint64(0) {
					value %= max + 1
				}
				wantE, wantOK := tab.Lookup(state, value)
				gotNext, gotOK := lt.lookup(state, value)
				if gotOK != wantOK {
					t.Fatalf("trial %d table %s: hit mismatch at state=%d value=%d", trial, tab.Name, state, value)
				}
				if gotOK && gotNext != wantE.Next {
					t.Fatalf("trial %d table %s: next %d != %d at state=%d value=%d",
						trial, tab.Name, gotNext, wantE.Next, state, value)
				}
			}
		}
	}
}

// genDifferentialRules emits a random rule set exercising every lookup
// encoding: exact stock entries, overlapping price/shares ranges, and
// enough distinct price bounds that domain compression kicks in (the
// codec path), so the differential tests cover codec-compressed fields.
func genDifferentialRules(r *rand.Rand, nRules int, symbols []string) string {
	var b strings.Builder
	for i := 0; i < nRules; i++ {
		sym := symbols[r.Intn(len(symbols))]
		port := 1 + r.Intn(8)
		switch r.Intn(5) {
		case 0:
			fmt.Fprintf(&b, "stock == %s : fwd(%d)\n", sym, port)
		case 1:
			fmt.Fprintf(&b, "stock == %s && price > %d : fwd(%d)\n", sym, r.Intn(1000), port)
		case 2:
			// Overlapping windows: many rules share the [lo, lo+w] shape
			// with staggered lo, so the compiled ranges overlap heavily.
			lo := r.Intn(900)
			fmt.Fprintf(&b, "price > %d && price < %d : fwd(%d)\n", lo, lo+50+r.Intn(200), port)
		case 3:
			fmt.Fprintf(&b, "price < %d && shares > %d : fwd(%d)\n", r.Intn(1000), r.Intn(500), port)
		default:
			fmt.Fprintf(&b, "stock == %s && shares >= %d && shares <= %d : fwd(%d)\n",
				sym, r.Intn(250), 250+r.Intn(250), port)
		}
	}
	return b.String()
}

// probeTable cross-checks one compiled table's three implementations —
// the flattened arrays (flatlookup.go), the retired map-based runtime
// (maplookup_test.go), and the compiler's linear-scan reference — at one
// (state, value) probe.
func probeTable(t *testing.T, tag string, tab *compiler.Table, flat *lookupTable, ref *mapLookupTable, state int, value uint64) {
	t.Helper()
	wantE, wantOK := tab.Lookup(state, value)
	gotNext, gotOK := flat.lookup(state, value)
	refNext, refOK := ref.lookup(state, value)
	if gotOK != wantOK || refOK != wantOK {
		t.Fatalf("%s table %s: hit mismatch at state=%d value=%d: flat=%v map=%v compiler=%v",
			tag, tab.Name, state, value, gotOK, refOK, wantOK)
	}
	if gotOK && (gotNext != wantE.Next || refNext != wantE.Next) {
		t.Fatalf("%s table %s: next flat=%d map=%d compiler=%d at state=%d value=%d",
			tag, tab.Name, gotNext, refNext, wantE.Next, state, value)
	}
}

// TestFlatLookupDifferentialQuick quick-checks the flattened lookup
// tables against both references on random programs with overlapping
// ranges and codec-compressed fields, probing random points plus every
// entry's Lo/Hi boundaries and their off-by-one neighbours.
func TestFlatLookupDifferentialQuick(t *testing.T) {
	r := rand.New(rand.NewSource(1729))
	for trial := 0; trial < 6; trial++ {
		rules := genDifferentialRules(r, 30+r.Intn(60), testSymbols)
		sw, prog, _ := buildSwitch(t, rules)
		tag := fmt.Sprintf("trial %d", trial)
		in := sw.inst.Load()
		codecSeen := false
		for fi, tab := range prog.Tables {
			flat := &in.tables[fi]
			refv := buildMapLookup(tab)
			ref := &refv
			if tab.Codec != nil {
				codecSeen = true
			}
			// Random probes, including out-of-range states.
			for probe := 0; probe < 400; probe++ {
				state := r.Intn(prog.NumStates()+4) - 1
				value := r.Uint64()
				if max := prog.Fields[fi].Max; max != ^uint64(0) {
					value %= max + 1
				}
				probeTable(t, tag, tab, flat, ref, state, value)
			}
			// Boundary probes around entries (sampled: the compiler-side
			// linear-scan reference makes exhaustive probing quadratic).
			stride := 1 + len(tab.Entries)/250
			for ei := 0; ei < len(tab.Entries); ei += stride {
				e := tab.Entries[ei]
				for _, v := range []uint64{e.Lo - 1, e.Lo, e.Hi, e.Hi + 1} {
					probeTable(t, tag, tab, flat, ref, e.State, v)
					probeTable(t, tag, tab, flat, ref, e.State+1, v)
				}
			}
		}
		if trial == 0 && !codecSeen {
			t.Log("warning: no codec-compressed table in trial 0 workload")
		}
	}
}

// TestFlatLookupOpenAddressed forces the open-addressed exact encoding
// (cardinality above openAddrMinEntries) and cross-checks it against the
// references for every installed symbol and a fuzz of misses.
func TestFlatLookupOpenAddressed(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	var b strings.Builder
	syms := make([]string, 0, 3*openAddrMinEntries)
	for i := 0; i < cap(syms); i++ {
		sym := fmt.Sprintf("S%03d", i)
		syms = append(syms, sym)
		fmt.Fprintf(&b, "stock == %s : fwd(%d)\n", sym, 1+i%8)
	}
	sw, prog, sp := buildSwitch(t, b.String())
	in := sw.inst.Load()
	var stockTab *compiler.Table
	var flat *lookupTable
	for fi, tab := range prog.Tables {
		if strings.Contains(tab.Name, "stock") {
			stockTab, flat = tab, &in.tables[fi]
		}
	}
	if stockTab == nil {
		t.Fatal("no stock table compiled")
	}
	if flat.oaNext == nil {
		t.Fatalf("stock table with %d entries did not use the open-addressed encoding", len(stockTab.Entries))
	}
	refv := buildMapLookup(stockTab)
	ref := &refv
	for _, sym := range syms {
		v := stockVal(t, sp, sym)
		for st := -1; st <= prog.NumStates()+1; st++ {
			probeTable(t, "oa", stockTab, flat, ref, st, v)
		}
	}
	for probe := 0; probe < 5000; probe++ {
		probeTable(t, "oa-miss", stockTab, flat, ref, r.Intn(prog.NumStates()+2), r.Uint64())
	}
}

// TestProcessMatchesEvaluate runs whole packets through Process and
// ProcessBatch and checks the decisions against the compiler's reference
// Evaluate on random stateless programs.
func TestProcessMatchesEvaluate(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	for trial := 0; trial < 6; trial++ {
		rules := genDifferentialRules(r, 40+r.Intn(60), testSymbols)
		sw, prog, sp := buildSwitch(t, rules)
		const batch = 64
		values := make([][]uint64, batch)
		now := make([]time.Duration, batch)
		out := make([]Result, batch)
		for round := 0; round < 20; round++ {
			for i := 0; i < batch; i++ {
				stock := stockVal(t, sp, testSymbols[r.Intn(len(testSymbols))])
				values[i] = packetValues(prog, r.Uint64()%600, stock, r.Uint64()%1100)
			}
			sw.ProcessBatch(values, now, out)
			for i := 0; i < batch; i++ {
				want := prog.Evaluate(append([]uint64(nil), values[i]...))
				single := sw.Process(values[i], 0)
				if out[i].Dropped != (len(want.Ports) == 0) || single.Dropped != out[i].Dropped {
					t.Fatalf("trial %d: drop mismatch: batch=%+v single=%+v want=%+v", trial, out[i], single, want)
				}
				if !out[i].Dropped && (!reflect.DeepEqual(out[i].Ports, want.Ports) || !reflect.DeepEqual(single.Ports, want.Ports)) {
					t.Fatalf("trial %d: ports mismatch: batch=%v single=%v want=%v", trial, out[i].Ports, single.Ports, want.Ports)
				}
			}
		}
	}
}

// FuzzFlatLookup fuzzes (table, state, value) probes on a fixed
// range+codec-heavy program, comparing the flattened lookup to the
// map-based reference and the compiler's linear scan.
func FuzzFlatLookup(f *testing.F) {
	r := rand.New(rand.NewSource(4242))
	rules := genDifferentialRules(r, 120, testSymbols)
	sw, prog, _ := buildSwitch(f, rules)
	in := sw.inst.Load()
	refs := make([]mapLookupTable, len(prog.Tables))
	for fi, tab := range prog.Tables {
		refs[fi] = buildMapLookup(tab)
	}
	f.Add(uint8(0), int32(0), uint64(0))
	f.Add(uint8(1), int32(3), uint64(500))
	f.Add(uint8(255), int32(-1), ^uint64(0))
	f.Fuzz(func(t *testing.T, ti uint8, state int32, value uint64) {
		fi := int(ti) % len(prog.Tables)
		tab, flat, ref := prog.Tables[fi], &in.tables[fi], &refs[fi]
		wantE, wantOK := tab.Lookup(int(state), value)
		gotNext, gotOK := flat.lookup(int(state), value)
		refNext, refOK := ref.lookup(int(state), value)
		if gotOK != wantOK || refOK != wantOK {
			t.Fatalf("hit mismatch table %s state=%d value=%d: flat=%v map=%v compiler=%v",
				tab.Name, state, value, gotOK, refOK, wantOK)
		}
		if gotOK && (gotNext != wantE.Next || refNext != wantE.Next) {
			t.Fatalf("next mismatch table %s state=%d value=%d: flat=%d map=%d compiler=%d",
				tab.Name, state, value, gotNext, refNext, wantE.Next)
		}
	})
}

// TestReinstallPreservesRegisters checks that a control-plane update does
// not clear hardware register state.
func TestReinstallPreservesRegisters(t *testing.T) {
	sw, prog, sp := buildSwitch(t, "stock == GOOGL && avg(price) > 50 : fwd(1)")
	googl := stockVal(t, sp, "GOOGL")
	// Prime the average.
	sw.Process(packetValues(prog, 0, googl, 100), 0)

	newProg, err := compiler.CompileSource(prog.Spec,
		"stock == GOOGL && avg(price) > 50 : fwd(1)\nstock == AAPL : fwd(2)\n", compiler.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := sw.Reinstall(newProg); err != nil {
		t.Fatal(err)
	}
	// The primed average must survive: next GOOGL forwards immediately.
	res := sw.Process(packetValues(newProg, 0, googl, 100), 1000)
	if res.Dropped {
		t.Fatalf("register state lost across reinstall: %+v", res)
	}
}
