package pipeline

import (
	"fmt"
	"strings"

	"camus/internal/compiler"
	"camus/internal/interval"
	"camus/internal/spec"
)

// TableDemand is the memory a single table needs on the device.
type TableDemand struct {
	Name string
	SRAM int // exact entries
	TCAM int // range/ternary entries after prefix expansion
	// Stages is how many physical stages the table occupies (a codec adds
	// a mapping stage in front of its main table).
	Stages int
}

// ResourceReport describes how a program maps onto the device.
type ResourceReport struct {
	Demands     []TableDemand
	TotalSRAM   int
	TotalTCAM   int
	StagesUsed  int
	SRAMBudget  int
	TCAMBudget  int
	StageBudget int
}

// Fits reports whether the program fits the device.
func (r ResourceReport) Fits() bool {
	return r.TotalSRAM <= r.SRAMBudget && r.TotalTCAM <= r.TCAMBudget && r.StagesUsed <= r.StageBudget
}

func (r ResourceReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "stages %d/%d, SRAM %d/%d, TCAM %d/%d\n",
		r.StagesUsed, r.StageBudget, r.TotalSRAM, r.SRAMBudget, r.TotalTCAM, r.TCAMBudget)
	for _, d := range r.Demands {
		fmt.Fprintf(&b, "  %-24s sram=%-7d tcam=%-6d stages=%d\n", d.Name, d.SRAM, d.TCAM, d.Stages)
	}
	return b.String()
}

// Plan computes the resource demand of a compiled program on a device.
func Plan(prog *compiler.Program, cfg Config) ResourceReport {
	rep := ResourceReport{
		SRAMBudget:  cfg.SRAMPerStage * cfg.Stages,
		TCAMBudget:  cfg.TCAMPerStage * cfg.Stages,
		StageBudget: cfg.Stages,
	}
	for _, t := range prog.Tables {
		d := demand(t, prog.Fields[t.Field])
		rep.Demands = append(rep.Demands, d)
		rep.TotalSRAM += d.SRAM
		rep.TotalTCAM += d.TCAM
		rep.StagesUsed += d.Stages
	}
	leaf := TableDemand{Name: "leaf", SRAM: len(prog.Leaf.Entries), Stages: 1}
	rep.Demands = append(rep.Demands, leaf)
	rep.TotalSRAM += leaf.SRAM
	rep.StagesUsed += leaf.Stages
	return rep
}

func demand(t *compiler.Table, fi compiler.FieldInfo) TableDemand {
	d := TableDemand{Name: t.Name, Stages: 1}
	if t.Codec != nil {
		d.Stages++
		d.TCAM += t.Codec.TCAMCost(fi.Bits)
	}
	for _, e := range t.Entries {
		switch e.Kind {
		case compiler.EntryExact:
			if t.Match == spec.MatchExact || t.Codec != nil {
				d.SRAM++
			} else {
				d.TCAM++
			}
		case compiler.EntryRange:
			d.TCAM += len(interval.ExpandRange(e.Lo, e.Hi, fi.Bits))
		case compiler.EntryWild:
			d.TCAM++
		}
	}
	return d
}

// CheckResources returns an error when the program does not fit cfg.
func CheckResources(prog *compiler.Program, cfg Config) error {
	rep := Plan(prog, cfg)
	if !rep.Fits() {
		return fmt.Errorf("program exceeds device resources:\n%s", rep)
	}
	return nil
}
