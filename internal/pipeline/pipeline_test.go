package pipeline

import (
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"time"

	"camus/internal/compiler"
	"camus/internal/spec"
)

const itchSpecSrc = `
header_type itch_add_order_t {
    fields {
        shares: 32;
        stock: 64;
        price: 32;
    }
}
header itch_add_order_t add_order;
@query_field(add_order.shares)
@query_field(add_order.price)
@query_field_exact(add_order.stock)
`

var testSymbols = []string{"AAPL", "MSFT", "GOOGL", "ORCL", "IBM", "AMZN", "NVDA", "TSLA"}

func buildSwitch(t testing.TB, rules string) (*Switch, *compiler.Program, *spec.Spec) {
	t.Helper()
	sp, err := spec.Parse(itchSpecSrc)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := compiler.CompileSource(sp, rules, compiler.Options{})
	if err != nil {
		t.Fatal(err)
	}
	sw, err := New(prog, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return sw, prog, sp
}

func stockVal(t testing.TB, sp *spec.Spec, sym string) uint64 {
	t.Helper()
	q, err := sp.LookupField("stock")
	if err != nil {
		t.Fatal(err)
	}
	v, err := spec.EncodeSymbol(q, sym)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func packetValues(prog *compiler.Program, shares, stock, price uint64) []uint64 {
	vals := make([]uint64, len(prog.Fields))
	for i, f := range prog.Fields {
		switch f.Name {
		case "add_order.shares":
			vals[i] = shares
		case "add_order.stock":
			vals[i] = stock
		case "add_order.price":
			vals[i] = price
		}
	}
	return vals
}

func TestSwitchMatchesProgramEvaluate(t *testing.T) {
	r := rand.New(rand.NewSource(21))
	var b strings.Builder
	for i := 0; i < 50; i++ {
		sym := testSymbols[r.Intn(len(testSymbols))]
		fmt.Fprintf(&b, "stock == %s && price > %d : fwd(%d)\n", sym, r.Intn(1000), 1+r.Intn(16))
	}
	sw, prog, sp := buildSwitch(t, b.String())
	for probe := 0; probe < 2000; probe++ {
		stock := stockVal(t, sp, testSymbols[r.Intn(len(testSymbols))])
		shares := r.Uint64() % 500
		price := r.Uint64() % 1100
		vals := packetValues(prog, shares, stock, price)
		want := prog.Evaluate(append([]uint64(nil), vals...))
		got := sw.Process(vals, 0)
		if got.Dropped != (len(want.Ports) == 0) {
			t.Fatalf("drop mismatch: %+v vs %+v", got, want)
		}
		if !got.Dropped && !reflect.DeepEqual(got.Ports, want.Ports) {
			t.Fatalf("ports mismatch: %v vs %v", got.Ports, want.Ports)
		}
	}
}

func TestMulticastResult(t *testing.T) {
	sw, prog, sp := buildSwitch(t, "stock == GOOGL : fwd(1,2,3)")
	res := sw.Process(packetValues(prog, 0, stockVal(t, sp, "GOOGL"), 0), 0)
	if res.Dropped || !reflect.DeepEqual(res.Ports, []int{1, 2, 3}) {
		t.Fatalf("multicast result wrong: %+v", res)
	}
	if res.Group < 0 {
		t.Fatal("expected a multicast group")
	}
	ports, err := sw.GroupPorts(res.Group)
	if err != nil || !reflect.DeepEqual(ports, []int{1, 2, 3}) {
		t.Fatalf("GroupPorts: %v %v", ports, err)
	}
	if _, err := sw.GroupPorts(99); err == nil {
		t.Fatal("bogus group should error")
	}
}

func TestStatefulAggregateWindow(t *testing.T) {
	sw, prog, sp := buildSwitch(t, "stock == GOOGL && avg(price) > 50 : fwd(1)")
	googl := stockVal(t, sp, "GOOGL")
	now := time.Duration(0)

	// First packet: average is 0 (no samples yet) -> dropped, but the
	// update fires because the rest of the rule matches.
	res := sw.Process(packetValues(prog, 0, googl, 100), now)
	if !res.Dropped {
		t.Fatalf("first packet should be dropped (avg=0): %+v", res)
	}
	// Second packet: avg is now 100 > 50 -> forwarded.
	now += time.Microsecond
	res = sw.Process(packetValues(prog, 0, googl, 100), now)
	if res.Dropped || !reflect.DeepEqual(res.Ports, []int{1}) {
		t.Fatalf("second packet should forward: %+v", res)
	}
	// Non-matching stock must not update state.
	now += time.Microsecond
	sw.Process(packetValues(prog, 0, stockVal(t, sp, "AAPL"), 1), now)

	// After the tumbling window expires the average resets to 0.
	now += AggWindow + time.Microsecond
	res = sw.Process(packetValues(prog, 0, googl, 100), now)
	if !res.Dropped {
		t.Fatalf("after window reset the first packet should drop: %+v", res)
	}
}

func TestRegisterAggregates(t *testing.T) {
	r := &Register{Window: 100 * time.Microsecond}
	now := time.Duration(0)
	for _, v := range []uint64{10, 20, 30} {
		r.Update(v, now)
		now += time.Microsecond
	}
	if got := r.Value("avg", now); got != 20 {
		t.Fatalf("avg = %d, want 20", got)
	}
	if got := r.Value("sum", now); got != 60 {
		t.Fatalf("sum = %d", got)
	}
	if got := r.Value("count", now); got != 3 {
		t.Fatalf("count = %d", got)
	}
	if got := r.Value("min", now); got != 10 {
		t.Fatalf("min = %d", got)
	}
	if got := r.Value("max", now); got != 30 {
		t.Fatalf("max = %d", got)
	}
	if got := r.Value("last", now); got != 30 {
		t.Fatalf("last = %d", got)
	}
	// Window roll resets. Jump several windows ahead; the window start
	// must land on a window boundary.
	now += time.Millisecond
	if got := r.Value("count", now); got != 0 {
		t.Fatalf("count after roll = %d, want 0", got)
	}
	r.Update(5, now)
	if got := r.Value("avg", now); got != 5 {
		t.Fatalf("avg after roll = %d, want 5", got)
	}
}

func TestRegisterFileZeroBeforeWrite(t *testing.T) {
	f := NewRegisterFile()
	if got := f.Read("ghost", "avg", 0); got != 0 {
		t.Fatalf("unwritten register read = %d", got)
	}
	f.Update("c", "count", 999, 0)
	f.Update("c", "count", 999, 0)
	if got := f.Read("c", "count", 0); got != 2 {
		t.Fatalf("count = %d, want 2", got)
	}
	if names := f.Names(); len(names) != 1 || names[0] != "c" {
		t.Fatalf("names = %v", names)
	}
}

func TestResourceRejection(t *testing.T) {
	sp, err := spec.Parse(itchSpecSrc)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := compiler.CompileSource(sp, "stock == GOOGL : fwd(1)", compiler.Options{})
	if err != nil {
		t.Fatal(err)
	}
	tiny := DefaultConfig()
	tiny.Stages = 1 // 3 field tables + leaf cannot fit one stage
	if _, err := New(prog, tiny); err == nil {
		t.Fatal("program should not fit a 1-stage device")
	}
}

func TestPlanReport(t *testing.T) {
	sw, prog, _ := buildSwitch(t, "stock == GOOGL && price > 50 : fwd(1)")
	rep := Plan(prog, sw.Config())
	if !rep.Fits() {
		t.Fatalf("tiny program should fit: %s", rep)
	}
	if rep.StagesUsed < 4 { // shares, price, stock, leaf
		t.Fatalf("stages used = %d, want >= 4", rep.StagesUsed)
	}
	if !strings.Contains(rep.String(), "leaf") {
		t.Fatalf("report missing leaf: %s", rep)
	}
}

func TestLatencyIndependentOfRules(t *testing.T) {
	small, _, _ := buildSwitch(t, "stock == GOOGL : fwd(1)")
	var b strings.Builder
	for i := 0; i < 500; i++ {
		fmt.Fprintf(&b, "stock == S%03d && price > %d : fwd(%d)\n", i%100, i, 1+i%16)
	}
	big, _, _ := buildSwitch(t, b.String())
	if small.Latency() != big.Latency() {
		t.Fatalf("pipeline latency must not depend on rule count: %v vs %v", small.Latency(), big.Latency())
	}
}

func TestDefaultConfigBandwidth(t *testing.T) {
	cfg := DefaultConfig()
	if got := cfg.BandwidthTbps(); got != 3.2 {
		t.Fatalf("32x100G = %v Tbps, want 3.2", got)
	}
	cfg.Ports = 64
	if got := cfg.BandwidthTbps(); got != 6.4 {
		t.Fatalf("64x100G = %v Tbps, want 6.4", got)
	}
}

func TestProcessCountsPackets(t *testing.T) {
	sw, prog, sp := buildSwitch(t, "stock == GOOGL : fwd(1)")
	for i := 0; i < 10; i++ {
		sw.Process(packetValues(prog, 0, stockVal(t, sp, "GOOGL"), 0), 0)
	}
	if sw.PacketsProcessed() != 10 {
		t.Fatalf("packets = %d", sw.PacketsProcessed())
	}
}
