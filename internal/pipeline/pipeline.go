// Package pipeline models the programmable switching ASIC that Camus
// compiles to — the Tofino stand-in of this reproduction.
//
// The model preserves the architectural properties the paper's evaluation
// rests on: a fixed-length sequence of match-action stages (one table
// lookup per stage, single matching entry wins by priority), per-packet
// work that is independent of how many subscriptions are installed,
// bounded SRAM/TCAM per stage, registers with tumbling windows for state
// variables, and a multicast replication engine. Lookup structures are
// flattened state-indexed arrays (see flatlookup.go) — binary-searched
// sorted runs or open-addressed flat tables for exact stages, sorted
// range runs for TCAM stages — so the per-packet path performs a fixed
// number of O(1)/O(log n) array lookups with zero allocation and the
// simulator itself processes tens of millions of messages per second.
package pipeline

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"camus/internal/compiler"
	"camus/internal/telemetry"
)

// Config sizes the modeled ASIC. The defaults approximate a 32-port
// Tofino-class device (§4: "a 32-port Barefoot Tofino switch, which can
// process packets at 3.25Tbps").
type Config struct {
	Ports        int           // number of front-panel ports
	PortRateGbps float64       // per-port line rate
	Stages       int           // match-action stages available
	SRAMPerStage int           // exact-match entries per stage
	TCAMPerStage int           // ternary/range entries per stage
	PipeLatency  time.Duration // fixed port-to-port processing latency

	// Telemetry, when non-nil, exports the device's hardware-style
	// counters (per-table hit/miss, entry occupancy, register reads)
	// through the registry and enables their hot-path maintenance. Nil
	// keeps Process at its uninstrumented cost.
	Telemetry *telemetry.Registry

	// Keyed-state engine sizing (see keyedstate.go). StateLanes is the
	// number of single-writer state lanes to pre-create (defaults to 1;
	// embedders with worker sharding call EnsureLanes or set this to the
	// worker count). StateCapacity is the cell count per lane per state
	// variable (rounded up to a power of two; default 1024).
	StateLanes    int
	StateCapacity int

	// StateMutex selects the retired global-mutex state path — a single
	// bank set serialized by one lock, whatever lane a packet arrives
	// on — kept as the measured A/B baseline for the sharded engine.
	StateMutex bool

	// StateAffine lets reads skip the cross-lane combine: the caller
	// guarantees packets are sharded to lanes by the same flow key that
	// keys the state (the locate-keyed lane affinity of the dataplane),
	// so a key's state lives wholly on its lane.
	StateAffine bool
}

// DefaultConfig models the 32-port switch used in the paper's testbed.
func DefaultConfig() Config {
	return Config{
		Ports:        32,
		PortRateGbps: 100,
		Stages:       12,
		SRAMPerStage: 120000,
		TCAMPerStage: 6144,
		PipeLatency:  600 * time.Nanosecond,
	}
}

// BandwidthTbps returns the aggregate switching capacity.
func (c Config) BandwidthTbps() float64 {
	return float64(c.Ports) * c.PortRateGbps / 1000
}

// Result is the forwarding decision for one packet.
type Result struct {
	Ports   []int // output ports (shared slice; do not modify)
	Dropped bool
	Group   int // multicast group used, or -1
}

// Switch is an ASIC with a compiled Camus program installed.
//
// The installed configuration (program, lookup tables, leaf, multicast
// groups) is published through a single atomic pointer, mirroring the
// hardware's all-or-nothing table commit: Process is safe to call from
// many goroutines concurrently with Reinstall, and each packet sees one
// consistent program version. Stateless programs (no aggregate/state
// fields) are fully race-free and lock-free. Programs with state
// variables go through the sharded keyed-state engine (keyedstate.go):
// each worker lane owns its banks outright — single writer, no lock on
// the packet path — provided callers honor the ProcessBatchOn contract
// (one goroutine per lane index). The legacy discipline, every state
// access behind one global mutex, survives under Config.StateMutex as
// the measured A/B baseline; there Process and ProcessBatch are safe
// from any goroutines without lane discipline, as before.
type Switch struct {
	cfg   Config
	inst  atomic.Pointer[installed]
	state *KeyedState

	packets telemetry.Counter // packet count on the pattern-free paths

	// Hardware-style counters, maintained only when cfg.Telemetry is set.
	// The packet path records a single fused sample per packet — which
	// tables missed and whether the packet dropped, packed into one
	// atomic add on a per-program pattern array (see patGen) — so
	// telemetry costs the hot path exactly as many atomic operations as
	// running without it. Per-table hit/miss totals and the
	// forwarded/dropped split are recovered from the patterns at scrape
	// time, the trick real switch drivers use for free counters. Counter
	// identity is by table name, so totals survive Reinstall the way
	// ASIC counters survive table writes.
	tel      *telemetry.Registry
	regReads *telemetry.Counter // @query_counter / state register reads

	ctrMu       sync.Mutex
	tableBase   map[string]uint64             // packets seen before a table first existed
	tableMiss   map[string]*telemetry.Counter // fallback miss counters (wide programs)
	fwdFallback *telemetry.Counter            // fallback forward counter (wide programs)
	gens        []*patGen                     // live pattern generations, oldest first
	foldPackets uint64                        // packets folded out of retired generations
	foldForward uint64                        // forwards folded out of retired generations
	foldMisses  map[string]uint64             // misses folded out of retired generations
}

// installed is one immutable program version: everything Process needs,
// swapped atomically by Reinstall. The lookup structures are the
// flattened arrays of flatlookup.go, built once here so the per-packet
// path performs no map probes and no allocation.
type installed struct {
	prog    *compiler.Program
	tables  []lookupTable
	leaf    leafTable
	groups  [][]int
	pat     []atomic.Uint64 // fused packet/miss-pattern counters (see patGen)
	dropBit uint64          // pattern bit recording "packet dropped"
	ctrs    []tableCounters // fallback per-table miss counters (wide programs)
	// reads and upds are the keyed-state descriptors, fully resolved at
	// install time (extending PR 9's register precompute): variable
	// slots, key/argument field indices, numeric aggregate folds, and
	// windows — so the packet path performs no name-map probe, no string
	// switch, and no first-touch allocation.
	reads []stateRead
	upds  [][]stateUpd
}

// stateRead fills one state field from the keyed engine: values[field] =
// Read(slot, values[keyIdx]). keyIdx < 0 means unkeyed (key 0).
type stateRead struct {
	field  int32
	slot   int32
	keyIdx int32 // pipeline field index of the key value, or -1
	agg    AggKind
	window time.Duration
}

// stateUpd folds one sample into the keyed engine: Update(slot,
// values[keyIdx], values[argIdx]). Negative indices mean unkeyed /
// no-argument; zeroArg is the count() fold.
type stateUpd struct {
	slot    int32
	keyIdx  int32
	argIdx  int32
	zeroArg bool
	window  time.Duration
}

// tableCounters is the fallback per-table counter hook used when a
// program has too many tables for a pattern array; each miss then pays
// its own atomic add.
type tableCounters struct {
	misses *telemetry.Counter
}

// patGen is one program generation's fused telemetry sample array:
// pat[mask] counts packets whose set of missed tables is exactly the
// table bits of mask, with one extra bit recording whether the packet
// was dropped. A single atomic add per packet captures the packet
// count, every table's hit/miss, and the forwarded/dropped split; the
// individual totals are recovered at scrape time by summing patterns.
type patGen struct {
	names []string        // table name per mask bit
	pat   []atomic.Uint64 // length 1 << (len(names)+1); top bit = dropped
}

const (
	// patMaxTables bounds the pattern-array size (2^(n+1) counters).
	// The default device has 12 match stages, so real programs always
	// qualify; wider custom configs fall back to per-table counters.
	patMaxTables = 12
	// keepGens is how many superseded generations stay live before
	// being folded into the cumulative totals. A Process call caught
	// mid-packet by a Reinstall still writes the old generation's
	// array; by the time a program has been replaced this many times,
	// any such call (microseconds long) is long gone.
	keepGens = 4
)

// New builds a Switch for a compiled program, validating that the program
// fits the device's table resources.
func New(prog *compiler.Program, cfg Config) (*Switch, error) {
	if cfg.Ports == 0 {
		saved := cfg
		cfg = DefaultConfig()
		cfg.Telemetry = saved.Telemetry
		cfg.StateLanes = saved.StateLanes
		cfg.StateCapacity = saved.StateCapacity
		cfg.StateMutex = saved.StateMutex
		cfg.StateAffine = saved.StateAffine
	}
	if err := CheckResources(prog, cfg); err != nil {
		return nil, err
	}
	sw := &Switch{
		cfg:   cfg,
		tel:   cfg.Telemetry,
		state: NewKeyedState(cfg.StateCapacity, cfg.StateMutex, cfg.StateAffine, cfg.Telemetry),
	}
	if cfg.StateLanes > 1 {
		sw.state.EnsureLanes(cfg.StateLanes)
	}
	if sw.tel != nil {
		sw.tableBase = make(map[string]uint64)
		sw.tableMiss = make(map[string]*telemetry.Counter)
		sw.foldMisses = make(map[string]uint64)
		sw.fwdFallback = new(telemetry.Counter)
		sw.regReads = sw.tel.Counter("camus_pipeline_register_reads_total")
		sw.tel.CounterFunc("camus_pipeline_packets_total", func() float64 {
			sw.ctrMu.Lock()
			defer sw.ctrMu.Unlock()
			return float64(sw.packetsTotalLocked())
		})
		sw.tel.CounterFunc("camus_pipeline_packets_forwarded_total", func() float64 {
			sw.ctrMu.Lock()
			defer sw.ctrMu.Unlock()
			return float64(sw.forwardedLocked())
		})
		sw.tel.CounterFunc("camus_pipeline_packets_dropped_total", func() float64 {
			sw.ctrMu.Lock()
			defer sw.ctrMu.Unlock()
			return float64(sw.packetsTotalLocked()) - float64(sw.forwardedLocked())
		})
	}
	sw.inst.Store(sw.newInstalled(prog))
	sw.publishOccupancy(prog)
	return sw, nil
}

// newInstalled builds the runtime form of a program, attaching the
// per-table counters when telemetry is enabled.
func (sw *Switch) newInstalled(prog *compiler.Program) *installed {
	in := &installed{
		prog:   prog,
		tables: make([]lookupTable, 0, len(prog.Tables)),
		leaf:   buildLeaf(prog.Leaf.Entries),
		groups: prog.Groups,
	}
	for _, t := range prog.Tables {
		in.tables = append(in.tables, buildLookup(t))
	}
	// Resolving state slots here doubles as the pre-create step: every
	// bank a packet can touch exists before the program is published
	// (hardware registers power up zeroed), so reads before any update
	// return zero and the packet path never allocates one lazily. Reads
	// resolve before updates so a declared window wins over the
	// aggregate default for the shared slot.
	for i, f := range prog.Fields {
		if !f.IsState {
			continue
		}
		identity := f.StateVar
		if identity == "" {
			identity = f.Name // programmatic FieldInfo without keyed metadata
		}
		identity = compiler.StateIdentity(identity, f.KeyField)
		slot := sw.state.EnsureVar(identity, fieldWindow(f))
		keyIdx := int32(-1)
		if f.KeyField != "" {
			keyIdx = int32(f.KeyIndex)
		}
		in.reads = append(in.reads, stateRead{
			field: int32(i), slot: int32(slot), keyIdx: keyIdx,
			agg: AggKindOf(f.Agg), window: fieldWindow(f),
		})
	}
	in.upds = make([][]stateUpd, len(prog.Actions))
	for ai := range prog.Actions {
		ups := prog.Actions[ai].Updates
		if len(ups) == 0 {
			continue
		}
		resolved := make([]stateUpd, len(ups))
		for ui, u := range ups {
			su := stateUpd{keyIdx: -1, argIdx: -1, zeroArg: u.Func == "count", window: AggWindow}
			if len(u.Args) > 0 {
				if fi, err := prog.FieldIndex(u.Args[0]); err == nil {
					su.argIdx = int32(fi)
				}
			}
			if u.StateKey != "" {
				if fi, err := prog.FieldIndex(u.StateKey); err == nil {
					su.keyIdx = int32(fi)
				}
			}
			if prog.Spec != nil {
				if v, err := prog.Spec.LookupState(u.Var); err == nil && v.WindowUS > 0 {
					su.window = time.Duration(v.WindowUS) * time.Microsecond
				}
			}
			su.slot = int32(sw.state.EnsureVar(compiler.StateIdentity(u.Var, u.StateKey), su.window))
			resolved[ui] = su
		}
		in.upds[ai] = resolved
	}
	if sw.tel != nil {
		names := make([]string, len(prog.Tables))
		for i, t := range prog.Tables {
			names[i] = t.Name
		}
		sw.ctrMu.Lock()
		now := sw.packetsTotalLocked()
		if len(names) <= patMaxTables {
			g := &patGen{names: names, pat: make([]atomic.Uint64, 1<<uint(len(names)+1))}
			sw.gens = append(sw.gens, g)
			in.pat = g.pat
			in.dropBit = 1 << uint(len(names))
			sw.foldOldLocked()
		} else {
			in.ctrs = make([]tableCounters, len(names))
			for i, name := range names {
				c := sw.tableMiss[name]
				if c == nil {
					c = new(telemetry.Counter)
					sw.tableMiss[name] = c
				}
				in.ctrs[i] = tableCounters{misses: c}
			}
		}
		for _, name := range names {
			if _, ok := sw.tableBase[name]; ok {
				continue
			}
			// Every packet traverses every table of the fixed pipeline
			// exactly once, so a table's lookups since it first appeared
			// are packets − base, and hits = lookups − misses: neither
			// side costs the packet path anything beyond the one fused
			// pattern sample.
			sw.tableBase[name] = now
			name := name
			sw.tel.CounterFunc("camus_pipeline_table_misses_total", func() float64 {
				sw.ctrMu.Lock()
				defer sw.ctrMu.Unlock()
				return float64(sw.missesLocked(name))
			}, telemetry.L("table", name))
			sw.tel.CounterFunc("camus_pipeline_table_hits_total", func() float64 {
				sw.ctrMu.Lock()
				defer sw.ctrMu.Unlock()
				lookups := sw.packetsTotalLocked() - sw.tableBase[name]
				return float64(lookups) - float64(sw.missesLocked(name))
			}, telemetry.L("table", name))
		}
		sw.ctrMu.Unlock()
	}
	return in
}

// packetsTotalLocked sums the direct packet counter, folded totals, and
// every live pattern generation. ctrMu must be held.
func (sw *Switch) packetsTotalLocked() uint64 {
	total := sw.packets.Load() + sw.foldPackets
	for _, g := range sw.gens {
		for i := range g.pat {
			total += g.pat[i].Load()
		}
	}
	return total
}

// forwardedLocked returns the cumulative forwarded-packet count: live
// pattern samples without the drop bit, folded totals, and the fallback
// counter. ctrMu must be held.
func (sw *Switch) forwardedLocked() uint64 {
	total := sw.fwdFallback.Load() + sw.foldForward
	for _, g := range sw.gens {
		drop := uint64(1) << uint(len(g.names))
		for mask := range g.pat {
			if uint64(mask)&drop == 0 {
				total += g.pat[mask].Load()
			}
		}
	}
	return total
}

// missesLocked returns a table's cumulative miss count across folded
// totals, the fallback counter, and live pattern generations that
// include the table. ctrMu must be held.
func (sw *Switch) missesLocked(table string) uint64 {
	total := sw.foldMisses[table]
	if c := sw.tableMiss[table]; c != nil {
		total += c.Load()
	}
	for _, g := range sw.gens {
		for bit, n := range g.names {
			if n != table {
				continue
			}
			b := uint64(1) << uint(bit)
			for mask := range g.pat {
				if uint64(mask)&b != 0 {
					total += g.pat[mask].Load()
				}
			}
			break
		}
	}
	return total
}

// foldOldLocked folds generations older than keepGens into the
// cumulative totals, bounding memory under subscription churn. Retired
// arrays are drained with atomic loads; see keepGens for why late
// writers are not a practical concern. ctrMu must be held.
func (sw *Switch) foldOldLocked() {
	for len(sw.gens) > keepGens {
		g := sw.gens[0]
		sw.gens = sw.gens[1:]
		drop := uint64(1) << uint(len(g.names))
		for mask := range g.pat {
			n := g.pat[mask].Load()
			if n == 0 {
				continue
			}
			sw.foldPackets += n
			if uint64(mask)&drop == 0 {
				sw.foldForward += n
			}
			for bit, name := range g.names {
				if uint64(mask)&(uint64(1)<<uint(bit)) != 0 {
					sw.foldMisses[name] += n
				}
			}
		}
	}
}

// publishOccupancy exports the installed program's table occupancy and
// resource footprint as gauges — the numbers §4's Fig. 5 plots, readable
// live from /metrics instead of scraped from a one-off print.
func (sw *Switch) publishOccupancy(prog *compiler.Program) {
	if sw.tel == nil {
		return
	}
	rep := Plan(prog, sw.cfg)
	for _, d := range rep.Demands {
		sw.tel.Gauge("camus_pipeline_table_entries", telemetry.L("table", d.Name)).Set(int64(d.SRAM + d.TCAM))
	}
	sw.tel.Gauge("camus_pipeline_sram_used").Set(int64(rep.TotalSRAM))
	sw.tel.Gauge("camus_pipeline_tcam_used").Set(int64(rep.TotalTCAM))
	sw.tel.Gauge("camus_pipeline_stages_used").Set(int64(rep.StagesUsed))
	sw.tel.Gauge("camus_pipeline_sram_budget").Set(int64(rep.SRAMBudget))
	sw.tel.Gauge("camus_pipeline_tcam_budget").Set(int64(rep.TCAMBudget))
	sw.tel.Gauge("camus_pipeline_stage_budget").Set(int64(rep.StageBudget))
	sw.tel.Gauge("camus_pipeline_multicast_groups").Set(int64(len(prog.Groups)))
	sw.tel.Gauge("camus_pipeline_states").Set(int64(prog.Stats.States))
}

// AggWindow is the default tumbling-window length for aggregate state
// variables (the paper's example uses a 100µs window).
const AggWindow = 100 * time.Microsecond

// fieldWindow returns a state field's declared tumbling window, falling
// back to the default for implicit aggregates.
func fieldWindow(f compiler.FieldInfo) time.Duration {
	if f.WindowUS > 0 {
		return time.Duration(f.WindowUS) * time.Microsecond
	}
	return AggWindow
}

// Process runs one packet through the pipeline on lane 0. values must
// contain the packet's header field values in program field order;
// state-field slots are overwritten with register reads. now is the
// packet's arrival time, used for tumbling windows.
func (sw *Switch) Process(values []uint64, now time.Duration) Result {
	in := sw.inst.Load() // one consistent program version per packet
	return sw.processOne(in, 0, values, now)
}

// ProcessOn is Process for one state lane — the unbatched form of
// ProcessBatchOn, with the same single-writer contract per lane.
//
//camus:hotpath bench=BenchmarkProcessBatchKeyed
func (sw *Switch) ProcessOn(lane int, values []uint64, now time.Duration) Result {
	in := sw.inst.Load()
	return sw.processOne(in, lane, values, now)
}

// ProcessBatch runs a batch of packets through the pipeline on lane 0,
// filling out[i] with the forwarding decision for values[i] arriving at
// now[i]. The three slices must have equal length. The program pointer
// is loaded once for the whole batch — every packet of a batch sees the
// same program version, and the per-packet cost drops by the atomic load
// and its cache miss. Telemetry semantics are identical to per-packet
// Process calls: one fused miss-pattern sample per packet.
//
//camus:hotpath bench=BenchmarkProcessBatch
func (sw *Switch) ProcessBatch(values [][]uint64, now []time.Duration, out []Result) {
	sw.ProcessBatchOn(0, values, now, out)
}

// ProcessBatchOn is ProcessBatch for one state lane — the sharded
// dataplane's entry point. The single-writer contract: at most one
// goroutine issues packets for a given lane index at a time, and the
// embedder calls EnsureLanes (or sets Config.StateLanes) up front.
// Reads may cross lanes (see KeyedState.Read); updates touch only the
// caller's lane. Under Config.StateMutex the lane index is ignored and
// every state access serializes on the engine mutex — the baseline.
//
//camus:hotpath bench=BenchmarkProcessBatchKeyed
func (sw *Switch) ProcessBatchOn(lane int, values [][]uint64, now []time.Duration, out []Result) {
	if len(values) != len(now) || len(values) != len(out) {
		//camus:alloc-ok panic argument on the caller-misuse path; the string itself is static
		panic("pipeline: ProcessBatch slice lengths differ")
	}
	in := sw.inst.Load() // one consistent program version per batch
	for i := range values {
		out[i] = sw.processOne(in, lane, values[i], now[i])
	}
}

// processOne is the per-packet hot path: a fixed sequence of flattened
// array-indexed stage lookups, no hashing beyond the state-bank probe,
// no allocation.
//
//camus:hotpath
func (sw *Switch) processOne(in *installed, lane int, values []uint64, now time.Duration) Result {
	// Stage 0: state reads populate metadata. Slots, keys, folds and
	// windows were resolved at install time (installed.reads), so the
	// read is a bank probe plus the fold — no name-map probe, no lock
	// outside mutex mode.
	for i := range in.reads {
		rd := &in.reads[i]
		key := uint64(0)
		if rd.keyIdx >= 0 {
			key = values[rd.keyIdx]
		}
		values[rd.field] = sw.state.Read(lane, int(rd.slot), key, rd.agg, rd.window, now)
	}
	if len(in.reads) > 0 {
		sw.regReads.Add(uint64(len(in.reads)))
	}
	// Match-action stages. With telemetry on, the miss pattern is
	// accumulated in a register-resident mask and recorded with one
	// fused atomic add at the end of the packet — the same number of
	// atomics the uninstrumented path pays for its packet counter.
	state := in.prog.InitialState
	var mask uint64
	switch {
	case in.pat != nil:
		for i := range in.tables {
			if next, ok := in.tables[i].lookup(state, values[i]); ok {
				state = next
			} else {
				mask |= 1 << uint(i)
			}
		}
	case in.ctrs != nil:
		sw.packets.Add(1)
		for i := range in.tables {
			if next, ok := in.tables[i].lookup(state, values[i]); ok {
				state = next
			} else {
				in.ctrs[i].misses.Add(1)
			}
		}
	default:
		sw.packets.Add(1)
		for i := range in.tables {
			if next, ok := in.tables[i].lookup(state, values[i]); ok {
				state = next
			}
		}
	}
	// Leaf stage.
	ai, ok := in.leaf.lookup(state)
	if !ok {
		if in.pat != nil {
			in.pat[mask|in.dropBit].Add(1)
		}
		return Result{Dropped: true, Group: -1}
	}
	act := &in.prog.Actions[ai]
	// State updates execute in the action stage. Slots, key and argument
	// field indices were resolved at install time (installed.upds), so
	// the loop is array loads and the single-writer bank fold — no
	// name-map probe, no first-touch allocation, no lock outside mutex
	// mode.
	for i := range in.upds[ai] {
		u := &in.upds[ai][i]
		arg := uint64(0)
		if u.argIdx >= 0 {
			arg = values[u.argIdx]
		}
		key := uint64(0)
		if u.keyIdx >= 0 {
			key = values[u.keyIdx]
		}
		sw.state.Update(lane, int(u.slot), key, u.zeroArg, arg, u.window, now)
	}
	if len(act.Ports) == 0 {
		if in.pat != nil {
			in.pat[mask|in.dropBit].Add(1)
		}
		return Result{Dropped: true, Group: -1}
	}
	if in.pat != nil {
		in.pat[mask].Add(1)
	} else {
		sw.fwdFallback.Add(1) // nil-safe no-op when telemetry is off
	}
	return Result{Ports: act.Ports, Group: act.Group}
}

// Latency returns the fixed port-to-port latency of the pipeline. It does
// not depend on the installed rule count — the property that lets Camus
// filter at line rate.
func (sw *Switch) Latency() time.Duration { return sw.cfg.PipeLatency }

// Config returns the device configuration.
func (sw *Switch) Config() Config { return sw.cfg }

// State exposes the keyed-state engine (observability, tests, and the
// embedder's EnsureLanes call at worker startup).
func (sw *Switch) State() *KeyedState { return sw.state }

// PacketsProcessed returns the number of packets run through the pipe.
func (sw *Switch) PacketsProcessed() uint64 {
	if sw.tel == nil {
		return sw.packets.Load()
	}
	sw.ctrMu.Lock()
	defer sw.ctrMu.Unlock()
	return sw.packetsTotalLocked()
}

// Program returns the installed program.
func (sw *Switch) Program() *compiler.Program { return sw.inst.Load().prog }

// Reinstall atomically replaces the installed program (the control plane's
// commit step). The new lookup structures are built off to the side and
// published with a single pointer store, so concurrent Process calls see
// either the old or the new program in full, never a mix. Register state is
// preserved across updates, as it would be on hardware where registers are
// not cleared by table writes.
func (sw *Switch) Reinstall(prog *compiler.Program) error {
	if err := CheckResources(prog, sw.cfg); err != nil {
		return err
	}
	// newInstalled resolves (and thereby pre-creates) every register the
	// program can touch, so they exist before any packet sees it.
	in := sw.newInstalled(prog)
	sw.inst.Store(in)
	sw.publishOccupancy(prog)
	return nil
}

// GroupPorts returns the port list of a multicast group.
func (sw *Switch) GroupPorts(g int) ([]int, error) {
	in := sw.inst.Load()
	if g < 0 || g >= len(in.groups) {
		return nil, fmt.Errorf("multicast group %d not installed", g)
	}
	return in.groups[g], nil
}
