// Package pipeline models the programmable switching ASIC that Camus
// compiles to — the Tofino stand-in of this reproduction.
//
// The model preserves the architectural properties the paper's evaluation
// rests on: a fixed-length sequence of match-action stages (one table
// lookup per stage, single matching entry wins by priority), per-packet
// work that is independent of how many subscriptions are installed,
// bounded SRAM/TCAM per stage, registers with tumbling windows for state
// variables, and a multicast replication engine. Lookup structures are
// hash maps for exact tables and sorted arrays for range tables, so the
// simulator itself processes millions of messages per second.
package pipeline

import (
	"fmt"
	"sort"
	"sync/atomic"
	"time"

	"camus/internal/compiler"
)

// Config sizes the modeled ASIC. The defaults approximate a 32-port
// Tofino-class device (§4: "a 32-port Barefoot Tofino switch, which can
// process packets at 3.25Tbps").
type Config struct {
	Ports        int           // number of front-panel ports
	PortRateGbps float64       // per-port line rate
	Stages       int           // match-action stages available
	SRAMPerStage int           // exact-match entries per stage
	TCAMPerStage int           // ternary/range entries per stage
	PipeLatency  time.Duration // fixed port-to-port processing latency
}

// DefaultConfig models the 32-port switch used in the paper's testbed.
func DefaultConfig() Config {
	return Config{
		Ports:        32,
		PortRateGbps: 100,
		Stages:       12,
		SRAMPerStage: 120000,
		TCAMPerStage: 6144,
		PipeLatency:  600 * time.Nanosecond,
	}
}

// BandwidthTbps returns the aggregate switching capacity.
func (c Config) BandwidthTbps() float64 {
	return float64(c.Ports) * c.PortRateGbps / 1000
}

// Result is the forwarding decision for one packet.
type Result struct {
	Ports   []int // output ports (shared slice; do not modify)
	Dropped bool
	Group   int // multicast group used, or -1
}

// Switch is an ASIC with a compiled Camus program installed.
//
// The installed configuration (program, lookup tables, leaf, multicast
// groups) is published through a single atomic pointer, mirroring the
// hardware's all-or-nothing table commit: Process is safe to call from
// many goroutines concurrently with Reinstall, and each packet sees one
// consistent program version. The read-mostly contract the control plane
// relies on: stateless programs (no aggregate/state fields) are fully
// race-free; programs with state variables additionally mutate the shared
// register file per packet, which — like the serialized register ALUs of
// the real ASIC — requires packets to be serialized by the caller.
type Switch struct {
	cfg  Config
	inst atomic.Pointer[installed]
	regs *RegisterFile

	packets atomic.Uint64 // processed packet count (telemetry)
}

// installed is one immutable program version: everything Process needs,
// swapped atomically by Reinstall.
type installed struct {
	prog   *compiler.Program
	tables []lookupTable
	leaf   map[int]int // state -> action index
	groups [][]int
}

type exactKey struct {
	state int
	value uint64
}

// lookupTable is the runtime form of one compiler.Table.
type lookupTable struct {
	field  int
	codec  *compiler.DomainCodec
	exact  map[exactKey]int     // (state, value) -> next
	wild   map[int]int          // state -> next
	ranges map[int][]rangeEntry // state -> sorted disjoint ranges
}

type rangeEntry struct {
	lo, hi uint64
	next   int
}

// New builds a Switch for a compiled program, validating that the program
// fits the device's table resources.
func New(prog *compiler.Program, cfg Config) (*Switch, error) {
	if cfg.Ports == 0 {
		cfg = DefaultConfig()
	}
	if err := CheckResources(prog, cfg); err != nil {
		return nil, err
	}
	sw := &Switch{
		cfg:  cfg,
		regs: NewRegisterFile(),
	}
	// Pre-create registers for state fields so reads before any update
	// return zero (hardware registers power up zeroed).
	for _, f := range prog.Fields {
		if f.IsState {
			sw.regs.Ensure(f.Name, fieldWindow(f))
		}
	}
	sw.inst.Store(newInstalled(prog))
	return sw, nil
}

// newInstalled builds the runtime form of a program.
func newInstalled(prog *compiler.Program) *installed {
	in := &installed{
		prog:   prog,
		tables: make([]lookupTable, 0, len(prog.Tables)),
		leaf:   make(map[int]int, len(prog.Leaf.Entries)),
		groups: prog.Groups,
	}
	for _, t := range prog.Tables {
		in.tables = append(in.tables, buildLookup(t))
	}
	for _, e := range prog.Leaf.Entries {
		in.leaf[e.State] = e.Next
	}
	return in
}

// AggWindow is the default tumbling-window length for aggregate state
// variables (the paper's example uses a 100µs window).
const AggWindow = 100 * time.Microsecond

// fieldWindow returns a state field's declared tumbling window, falling
// back to the default for implicit aggregates.
func fieldWindow(f compiler.FieldInfo) time.Duration {
	if f.WindowUS > 0 {
		return time.Duration(f.WindowUS) * time.Microsecond
	}
	return AggWindow
}

func buildLookup(t *compiler.Table) lookupTable {
	lt := lookupTable{
		field:  t.Field,
		codec:  t.Codec,
		exact:  make(map[exactKey]int),
		wild:   make(map[int]int),
		ranges: make(map[int][]rangeEntry),
	}
	for _, e := range t.Entries {
		switch e.Kind {
		case compiler.EntryExact:
			lt.exact[exactKey{e.State, e.Lo}] = e.Next
		case compiler.EntryWild:
			lt.wild[e.State] = e.Next
		case compiler.EntryRange:
			lt.ranges[e.State] = append(lt.ranges[e.State], rangeEntry{e.Lo, e.Hi, e.Next})
		}
	}
	for st := range lt.ranges {
		rs := lt.ranges[st]
		sort.Slice(rs, func(i, j int) bool { return rs[i].lo < rs[j].lo })
		lt.ranges[st] = rs
	}
	return lt
}

// lookup performs the single-stage table lookup: exact first (SRAM), then
// ranges (TCAM), then the per-state wildcard default.
func (lt *lookupTable) lookup(state int, value uint64) (int, bool) {
	if lt.codec != nil {
		value = lt.codec.Code(value)
	}
	if next, ok := lt.exact[exactKey{state, value}]; ok {
		return next, true
	}
	if rs, ok := lt.ranges[state]; ok {
		lo, hi := 0, len(rs)-1
		for lo <= hi {
			mid := (lo + hi) / 2
			switch {
			case value < rs[mid].lo:
				hi = mid - 1
			case value > rs[mid].hi:
				lo = mid + 1
			default:
				return rs[mid].next, true
			}
		}
	}
	if next, ok := lt.wild[state]; ok {
		return next, true
	}
	return 0, false
}

// Process runs one packet through the pipeline. values must contain the
// packet's header field values in program field order; state-field slots
// are overwritten with register reads. now is the packet's arrival time,
// used for tumbling windows.
func (sw *Switch) Process(values []uint64, now time.Duration) Result {
	sw.packets.Add(1)
	in := sw.inst.Load() // one consistent program version per packet
	fields := in.prog.Fields
	// Stage 0: state-variable reads populate metadata.
	for i := range fields {
		if fields[i].IsState {
			values[i] = sw.regs.Read(fields[i].Name, fields[i].Agg, now)
		}
	}
	// Match-action stages.
	state := in.prog.InitialState
	for i := range in.tables {
		if next, ok := in.tables[i].lookup(state, values[i]); ok {
			state = next
		}
	}
	// Leaf stage.
	ai, ok := in.leaf[state]
	if !ok {
		return Result{Dropped: true, Group: -1}
	}
	act := &in.prog.Actions[ai]
	// State updates execute in the action stage.
	for _, u := range act.Updates {
		arg := uint64(0)
		if len(u.Args) > 0 {
			if fi, err := in.prog.FieldIndex(u.Args[0]); err == nil {
				arg = values[fi]
			}
		}
		sw.regs.Update(u.Var, u.Func, arg, now)
	}
	if len(act.Ports) == 0 {
		return Result{Dropped: true, Group: -1}
	}
	return Result{Ports: act.Ports, Group: act.Group}
}

// Latency returns the fixed port-to-port latency of the pipeline. It does
// not depend on the installed rule count — the property that lets Camus
// filter at line rate.
func (sw *Switch) Latency() time.Duration { return sw.cfg.PipeLatency }

// Config returns the device configuration.
func (sw *Switch) Config() Config { return sw.cfg }

// Registers exposes the register file (tests, telemetry).
func (sw *Switch) Registers() *RegisterFile { return sw.regs }

// PacketsProcessed returns the number of packets run through the pipe.
func (sw *Switch) PacketsProcessed() uint64 { return sw.packets.Load() }

// Program returns the installed program.
func (sw *Switch) Program() *compiler.Program { return sw.inst.Load().prog }

// Reinstall atomically replaces the installed program (the control plane's
// commit step). The new lookup structures are built off to the side and
// published with a single pointer store, so concurrent Process calls see
// either the old or the new program in full, never a mix. Register state is
// preserved across updates, as it would be on hardware where registers are
// not cleared by table writes.
func (sw *Switch) Reinstall(prog *compiler.Program) error {
	if err := CheckResources(prog, sw.cfg); err != nil {
		return err
	}
	in := newInstalled(prog)
	// Registers must exist before any packet can see the new program.
	for _, f := range prog.Fields {
		if f.IsState {
			sw.regs.Ensure(f.Name, fieldWindow(f))
		}
	}
	sw.inst.Store(in)
	return nil
}

// GroupPorts returns the port list of a multicast group.
func (sw *Switch) GroupPorts(g int) ([]int, error) {
	in := sw.inst.Load()
	if g < 0 || g >= len(in.groups) {
		return nil, fmt.Errorf("multicast group %d not installed", g)
	}
	return in.groups[g], nil
}
