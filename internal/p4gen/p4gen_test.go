package p4gen

import (
	"strings"
	"testing"

	"camus/internal/compiler"
	"camus/internal/spec"
)

const itchSpecSrc = `
header_type itch_add_order_t {
    fields {
        shares: 32;
        stock: 64;
        price: 32;
    }
}
header itch_add_order_t add_order;
@query_field(add_order.shares)
@query_field(add_order.price)
@query_field_exact(add_order.stock)
`

func compile(t *testing.T, rules string) *compiler.Program {
	t.Helper()
	sp, err := spec.Parse(itchSpecSrc)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := compiler.CompileSource(sp, rules, compiler.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

func TestGenerateP4Structure(t *testing.T) {
	prog := compile(t, "stock == GOOGL && price > 50 : fwd(1)\nstock == AAPL : fwd(2,3)\n")
	src := GenerateP4(prog)
	for _, want := range []string{
		"header_type itch_add_order_t",
		"header itch_add_order_t add_order;",
		"metadata camus_meta_t camus_meta;",
		"parser start",
		"extract(add_order);",
		"action set_state(next_state)",
		"table camus_add_order_stock",
		"camus_meta.state : exact;",
		"add_order.stock : exact;",
		"table camus_leaf",
		"do_multicast",
		"control ingress",
		"apply(camus_leaf);",
	} {
		if !strings.Contains(src, want) {
			t.Errorf("generated P4 missing %q\n%s", want, src)
		}
	}
}

func TestGenerateP4StatefulProgram(t *testing.T) {
	prog := compile(t, "stock == GOOGL && avg(price) > 50 : fwd(1)")
	src := GenerateP4(prog)
	for _, want := range []string{
		"register reg_avg_add_order_price_sum",
		"update_avg_add_order_price",
		"register_write",
	} {
		if !strings.Contains(src, want) {
			t.Errorf("stateful P4 missing %q", want)
		}
	}
}

func TestGenerateP4TableOrderMatchesPipeline(t *testing.T) {
	prog := compile(t, "stock == GOOGL && price > 50 && shares < 100 : fwd(1)")
	src := GenerateP4(prog)
	ingress := src[strings.Index(src, "control ingress"):]
	iShares := strings.Index(ingress, "apply(camus_add_order_shares);")
	iPrice := strings.Index(ingress, "apply(camus_add_order_price);")
	iStock := strings.Index(ingress, "apply(camus_add_order_stock);")
	iLeaf := strings.Index(ingress, "apply(camus_leaf);")
	if !(iShares >= 0 && iShares < iPrice && iPrice < iStock && iStock < iLeaf) {
		t.Fatalf("apply order wrong:\n%s", ingress)
	}
}

func TestGenerateEntries(t *testing.T) {
	prog := compile(t, "stock == GOOGL : fwd(1)\nstock == AAPL : fwd(2,3)\n")
	entries := GenerateEntries(prog)
	for _, want := range []string{
		"mcgroup 0 ports=2,3",
		"table camus_add_order_stock add",
		"-> fwd(1)",
		"-> mcast(0)",
		"-> drop",
	} {
		if !strings.Contains(entries, want) {
			t.Errorf("entries missing %q\n%s", want, entries)
		}
	}
}

func TestGenerateEntriesWithCodec(t *testing.T) {
	sp, err := spec.Parse(itchSpecSrc)
	if err != nil {
		t.Fatal(err)
	}
	if err := sp.SetFieldOrder("stock", "price"); err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	for i, sym := range []string{"AAPL", "MSFT", "GOOGL", "ORCL", "IBM", "AMZN"} {
		b.WriteString("stock == " + sym + " && price > 500 : fwd(" + string(rune('1'+i)) + ")\n")
	}
	prog, err := compiler.CompileSource(sp, b.String(), compiler.Options{CompressionMinEntries: 1})
	if err != nil {
		t.Fatal(err)
	}
	hasCodec := false
	for _, tab := range prog.Tables {
		if tab.Codec != nil {
			hasCodec = true
		}
	}
	if !hasCodec {
		t.Skip("compression did not trigger; nothing to test")
	}
	src := GenerateP4(prog)
	if !strings.Contains(src, "_codec") || !strings.Contains(src, "_code, code") {
		t.Fatalf("codec stage missing from P4:\n%s", src)
	}
	entries := GenerateEntries(prog)
	if !strings.Contains(entries, "_codec add match=range:") {
		t.Fatalf("codec entries missing:\n%s", entries)
	}
}

func TestTableSizePowersOfTwo(t *testing.T) {
	cases := map[int]int{0: 16, 1: 16, 16: 16, 17: 32, 100: 128, 21401: 32768}
	for n, want := range cases {
		if got := tableSize(n); got != want {
			t.Errorf("tableSize(%d) = %d, want %d", n, got, want)
		}
	}
}
