package stats

import (
	"math/rand"
	"strings"
	"testing"
	"time"
)

func fill(vals ...time.Duration) *Dist {
	d := &Dist{}
	for _, v := range vals {
		d.Add(v)
	}
	return d
}

func TestPercentiles(t *testing.T) {
	d := &Dist{}
	for i := 100; i >= 1; i-- { // insert descending to exercise sorting
		d.Add(time.Duration(i) * time.Microsecond)
	}
	if d.Count() != 100 {
		t.Fatalf("count = %d", d.Count())
	}
	cases := map[float64]time.Duration{
		0:   1 * time.Microsecond,
		1:   1 * time.Microsecond,
		50:  50 * time.Microsecond,
		99:  99 * time.Microsecond,
		100: 100 * time.Microsecond,
	}
	for p, want := range cases {
		if got := d.Percentile(p); got != want {
			t.Errorf("p%v = %v, want %v", p, got, want)
		}
	}
	if d.Min() != time.Microsecond || d.Max() != 100*time.Microsecond {
		t.Fatalf("min/max wrong: %v %v", d.Min(), d.Max())
	}
	if d.Median() != 50*time.Microsecond {
		t.Fatalf("median = %v", d.Median())
	}
	if d.Mean() != 50500*time.Nanosecond {
		t.Fatalf("mean = %v", d.Mean())
	}
}

func TestPercentileEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	(&Dist{}).Percentile(50)
}

func TestFractionBelow(t *testing.T) {
	d := fill(1*time.Microsecond, 2*time.Microsecond, 3*time.Microsecond, 4*time.Microsecond)
	cases := []struct {
		at   time.Duration
		want float64
	}{
		{0, 0}, {time.Microsecond, 0.25}, {2500 * time.Nanosecond, 0.5}, {4 * time.Microsecond, 1},
		{time.Second, 1},
	}
	for _, c := range cases {
		if got := d.FractionBelow(c.at); got != c.want {
			t.Errorf("FractionBelow(%v) = %v, want %v", c.at, got, c.want)
		}
	}
	if got := (&Dist{}).FractionBelow(time.Second); got != 0 {
		t.Fatalf("empty FractionBelow = %v", got)
	}
}

func TestCDFMonotonic(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	d := &Dist{}
	for i := 0; i < 1000; i++ {
		d.Add(time.Duration(r.Intn(1_000_000)))
	}
	pts := d.CDF(50)
	if len(pts) != 50 {
		t.Fatalf("points = %d", len(pts))
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].X < pts[i-1].X || pts[i].P <= pts[i-1].P {
			t.Fatalf("CDF not monotonic at %d: %+v %+v", i, pts[i-1], pts[i])
		}
	}
	if pts[len(pts)-1].P != 1.0 {
		t.Fatalf("CDF should end at 1.0, got %v", pts[len(pts)-1].P)
	}
	if (&Dist{}).CDF(10) != nil {
		t.Fatal("empty CDF should be nil")
	}
}

func TestCDFConsistentWithFractionBelow(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	d := &Dist{}
	for i := 0; i < 500; i++ {
		d.Add(time.Duration(r.Intn(10000)))
	}
	for _, pt := range d.CDF(20) {
		if got := d.FractionBelow(pt.X); got < pt.P-0.01 {
			t.Fatalf("FractionBelow(%v)=%v < CDF P=%v", pt.X, got, pt.P)
		}
	}
}

func TestSummaryAndTable(t *testing.T) {
	c := fill(time.Microsecond, 2*time.Microsecond)
	b := fill(10*time.Microsecond, 300*time.Microsecond)
	if s := (&Dist{}).Summary(); s != "n=0" {
		t.Fatalf("empty summary = %q", s)
	}
	tab := Table("fig7a", c, b, []time.Duration{20 * time.Microsecond, 300 * time.Microsecond})
	for _, want := range []string{"fig7a", "camus", "baseline", "20µs", "100.00%", "50.00%"} {
		if !strings.Contains(tab, want) {
			t.Errorf("table missing %q:\n%s", want, tab)
		}
	}
}

func TestMerge(t *testing.T) {
	mk := func(vs ...time.Duration) *Dist {
		d := &Dist{}
		for _, v := range vs {
			d.Add(v)
		}
		return d
	}

	t.Run("sorted-fast-path", func(t *testing.T) {
		a := mk(5, 1, 3)
		b := mk(4, 2, 6)
		_ = a.Median() // force both sides sorted
		_ = b.Median()
		a.Merge(b)
		if got, want := a.Count(), 6; got != want {
			t.Fatalf("Count = %d, want %d", got, want)
		}
		for p, want := range map[float64]time.Duration{0: 1, 50: 3, 100: 6} {
			if got := a.Percentile(p); got != want {
				t.Errorf("p%v = %v, want %v", p, got, want)
			}
		}
		if !a.sorted {
			t.Error("merge of two sorted dists should stay sorted")
		}
	})

	t.Run("unsorted", func(t *testing.T) {
		a := mk(5, 1)
		a.Merge(mk(4, 2))
		if got, want := a.Max(), 5*time.Nanosecond; got != want {
			t.Errorf("Max = %v, want %v", got, want)
		}
		if got, want := a.Min(), 1*time.Nanosecond; got != want {
			t.Errorf("Min = %v, want %v", got, want)
		}
	})

	t.Run("into-empty", func(t *testing.T) {
		a := &Dist{}
		b := mk(3, 1, 2)
		_ = b.Median()
		a.Merge(b)
		if got, want := a.Median(), 2*time.Nanosecond; got != want {
			t.Errorf("Median = %v, want %v", got, want)
		}
	})

	t.Run("nil-and-empty-noop", func(t *testing.T) {
		a := mk(1, 2)
		a.Merge(nil)
		a.Merge(&Dist{})
		if got, want := a.Count(), 2; got != want {
			t.Errorf("Count = %d, want %d", got, want)
		}
	})

	t.Run("other-unchanged", func(t *testing.T) {
		a := mk(9)
		b := mk(3, 1)
		a.Merge(b)
		if got, want := b.Count(), 2; got != want {
			t.Errorf("other.Count = %d, want %d", got, want)
		}
	})
}
