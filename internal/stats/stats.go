// Package stats provides the small statistics toolkit the benchmark
// harness uses to reproduce the paper's figures: latency distributions,
// percentiles, and CDF series like Figure 7.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"
)

// Dist accumulates duration samples (e.g. message latencies).
type Dist struct {
	samples []time.Duration
	sorted  bool
}

// Add records one sample.
func (d *Dist) Add(v time.Duration) {
	d.samples = append(d.samples, v)
	d.sorted = false
}

// Count returns the number of samples.
func (d *Dist) Count() int { return len(d.samples) }

// Merge folds other's samples into d (other is unchanged). When both
// sides are already sorted the merge preserves order with one linear
// pass, so a Percentile right after merging sharded distributions —
// the common aggregation pattern — costs no re-sort.
func (d *Dist) Merge(other *Dist) {
	if other == nil || len(other.samples) == 0 {
		return
	}
	if len(d.samples) == 0 {
		d.samples = append(d.samples, other.samples...)
		d.sorted = other.sorted
		return
	}
	if d.sorted && other.sorted {
		merged := make([]time.Duration, 0, len(d.samples)+len(other.samples))
		i, j := 0, 0
		for i < len(d.samples) && j < len(other.samples) {
			if d.samples[i] <= other.samples[j] {
				merged = append(merged, d.samples[i])
				i++
			} else {
				merged = append(merged, other.samples[j])
				j++
			}
		}
		merged = append(merged, d.samples[i:]...)
		merged = append(merged, other.samples[j:]...)
		d.samples = merged
		return
	}
	d.samples = append(d.samples, other.samples...)
	d.sorted = false
}

func (d *Dist) sortSamples() {
	if !d.sorted {
		sort.Slice(d.samples, func(i, j int) bool { return d.samples[i] < d.samples[j] })
		d.sorted = true
	}
}

// Percentile returns the p-th percentile (0 < p <= 100) using
// nearest-rank. It panics on an empty distribution.
func (d *Dist) Percentile(p float64) time.Duration {
	if len(d.samples) == 0 {
		panic("stats: percentile of empty distribution")
	}
	d.sortSamples()
	if p <= 0 {
		return d.samples[0]
	}
	rank := int(math.Ceil(p / 100 * float64(len(d.samples))))
	if rank < 1 {
		rank = 1
	}
	if rank > len(d.samples) {
		rank = len(d.samples)
	}
	return d.samples[rank-1]
}

// Min returns the smallest sample.
func (d *Dist) Min() time.Duration { return d.Percentile(0) }

// Max returns the largest sample.
func (d *Dist) Max() time.Duration { return d.Percentile(100) }

// Median returns the 50th percentile.
func (d *Dist) Median() time.Duration { return d.Percentile(50) }

// Mean returns the arithmetic mean.
func (d *Dist) Mean() time.Duration {
	if len(d.samples) == 0 {
		return 0
	}
	var sum time.Duration
	for _, v := range d.samples {
		sum += v
	}
	return sum / time.Duration(len(d.samples))
}

// FractionBelow returns the fraction of samples <= v (the CDF at v).
func (d *Dist) FractionBelow(v time.Duration) float64 {
	if len(d.samples) == 0 {
		return 0
	}
	d.sortSamples()
	idx := sort.Search(len(d.samples), func(i int) bool { return d.samples[i] > v })
	return float64(idx) / float64(len(d.samples))
}

// CDFPoint is one point of a cumulative distribution series.
type CDFPoint struct {
	X time.Duration
	P float64
}

// CDF returns an n-point CDF series over the sample range, suitable for
// plotting Figure-7-style curves.
func (d *Dist) CDF(n int) []CDFPoint {
	if len(d.samples) == 0 || n <= 0 {
		return nil
	}
	d.sortSamples()
	out := make([]CDFPoint, 0, n)
	for i := 1; i <= n; i++ {
		idx := (len(d.samples)*i)/n - 1
		if idx < 0 {
			idx = 0
		}
		out = append(out, CDFPoint{X: d.samples[idx], P: float64(i) / float64(n)})
	}
	return out
}

// Summary renders a one-line digest.
func (d *Dist) Summary() string {
	if len(d.samples) == 0 {
		return "n=0"
	}
	return fmt.Sprintf("n=%d min=%v p50=%v p99=%v p99.9=%v max=%v",
		d.Count(), d.Min(), d.Median(), d.Percentile(99), d.Percentile(99.9), d.Max())
}

// Table renders two distributions side by side at fixed CDF probe points,
// the textual equivalent of the paper's Figure 7 plots.
func Table(name string, camus, baseline *Dist, probes []time.Duration) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n%-12s %12s %12s\n", name, "latency<=", "camus", "baseline")
	for _, p := range probes {
		fmt.Fprintf(&b, "%-12v %11.2f%% %11.2f%%\n", p,
			camus.FractionBelow(p)*100, baseline.FractionBelow(p)*100)
	}
	fmt.Fprintf(&b, "camus:    %s\nbaseline: %s\n", camus.Summary(), baseline.Summary())
	return b.String()
}
