package telemetry

import (
	"context"
	"encoding/json"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// DebugRoute attaches one extra JSON document to the admin mux: Doc is
// invoked per request and marshaled indented. Documents must follow the
// same contract as the built-in routes — read-only against the
// dataplane (camus-switch serves its register snapshot this way).
type DebugRoute struct {
	Path string
	Doc  func() any
}

// Handler returns the admin HTTP mux for a deployment:
//
//	/metrics       Prometheus text exposition of the registry
//	/debug/camus   indented-JSON Snapshot (registry + recent spans)
//	/debug/pprof/  the standard Go profiler endpoints
//
// plus one route per extra DebugRoute. The same mux backs
// `camus-switch -admin`. Handlers only read atomics, so scraping a
// switch under load does not perturb the dataplane.
func Handler(t *Telemetry, extra ...DebugRoute) http.Handler {
	mux := http.NewServeMux()
	for _, r := range extra {
		doc := r.Doc
		mux.HandleFunc(r.Path, func(w http.ResponseWriter, req *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			b, err := json.MarshalIndent(doc(), "", "  ")
			if err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
				return
			}
			_, _ = w.Write(b)
			_, _ = w.Write([]byte("\n"))
		})
	}
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = t.Reg().WritePrometheus(w)
	})
	mux.HandleFunc("/debug/camus", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		b, err := t.Snapshot().MarshalIndent()
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		_, _ = w.Write(b)
		_, _ = w.Write([]byte("\n"))
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// AdminServer is a running admin endpoint.
type AdminServer struct {
	srv  *http.Server
	ln   net.Listener
	done chan struct{}
}

// Serve binds addr and serves the admin mux in a background goroutine.
// The goroutine signals done when Serve returns, so Close can wait for
// it instead of leaving a serve loop racing process teardown.
func Serve(addr string, t *Telemetry, extra ...DebugRoute) (*AdminServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	srv := &http.Server{Handler: Handler(t, extra...), ReadHeaderTimeout: 5 * time.Second}
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = srv.Serve(ln)
	}()
	return &AdminServer{srv: srv, ln: ln, done: done}, nil
}

// Addr returns the bound listen address.
func (a *AdminServer) Addr() net.Addr { return a.ln.Addr() }

// Close shuts the server down, waiting briefly for in-flight scrapes
// and then for the serve goroutine to exit.
func (a *AdminServer) Close() error {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	err := a.srv.Shutdown(ctx)
	<-a.done
	return err
}
