package telemetry

import (
	"encoding/json"
	"time"
)

// Snapshot is the one JSON shape every Camus observability surface
// shares: /debug/camus on a running switch, the final dump camus-switch
// writes on SIGTERM, and the telemetry block camus-bench embeds in
// BENCH_compile.json. Keys are full series identities — the metric name
// plus its sorted label set in Prometheus form (`camus_pipeline_
// table_hits_total{table="stock"}`), so a snapshot diff lines up
// one-to-one with a /metrics scrape.
type Snapshot struct {
	TakenAt    time.Time                    `json:"taken_at"`
	Counters   map[string]uint64            `json:"counters,omitempty"`
	Gauges     map[string]float64           `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
	Spans      []SpanRecord                 `json:"spans,omitempty"`
}

// Snapshot captures every registered series. Function-backed series are
// evaluated at capture time.
func (r *Registry) Snapshot() Snapshot {
	snap := Snapshot{
		TakenAt:    time.Now(),
		Counters:   make(map[string]uint64),
		Gauges:     make(map[string]float64),
		Histograms: make(map[string]HistogramSnapshot),
	}
	for _, s := range r.snapshotSeries() {
		switch s.kind {
		case kindCounter:
			snap.Counters[s.key] = s.counter.Load()
		case kindCounterFunc:
			v := s.fn()
			if v < 0 {
				v = 0 // a derived counter must not go negative mid-transition
			}
			snap.Counters[s.key] = uint64(v)
		case kindGauge:
			snap.Gauges[s.key] = float64(s.gauge.Load())
		case kindGaugeFunc:
			snap.Gauges[s.key] = s.fn()
		case kindHistogram:
			snap.Histograms[s.key] = s.hist.Snapshot()
		}
	}
	return snap
}

// Snapshot captures the registry and the retained spans.
func (t *Telemetry) Snapshot() Snapshot {
	if t == nil {
		return Snapshot{TakenAt: time.Now()}
	}
	var snap Snapshot
	if t.Registry != nil {
		snap = t.Registry.Snapshot()
	} else {
		snap = Snapshot{TakenAt: time.Now()}
	}
	snap.Spans = t.Tracer.Spans()
	return snap
}

// MarshalIndent renders the snapshot as indented JSON (the /debug/camus
// and SIGTERM-dump format).
func (s Snapshot) MarshalIndent() ([]byte, error) {
	return json.MarshalIndent(s, "", "  ")
}
