package telemetry

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// WritePrometheus renders every registered series in the Prometheus text
// exposition format (version 0.0.4): one # TYPE line per metric name,
// counter/gauge samples as plain values, histograms as cumulative
// _bucket{le=...} samples plus _sum and _count.
func (r *Registry) WritePrometheus(w io.Writer) error {
	all := r.snapshotSeries()

	// TYPE/HELP lines are per metric name; series of one name must be
	// grouped together in the output. Preserve first-registration order
	// of names, then key order within a name for determinism.
	byName := make(map[string][]*series)
	var names []string
	for _, s := range all {
		if _, ok := byName[s.name]; !ok {
			names = append(names, s.name)
		}
		byName[s.name] = append(byName[s.name], s)
	}

	for _, name := range names {
		group := byName[name]
		sort.Slice(group, func(i, j int) bool { return group[i].key < group[j].key })
		if help := groupHelp(group); help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", name, help); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", name, promType(group[0].kind)); err != nil {
			return err
		}
		for _, s := range group {
			if err := writeSeries(w, s); err != nil {
				return err
			}
		}
	}
	return nil
}

func groupHelp(group []*series) string {
	for _, s := range group {
		if s.help != "" {
			return s.help
		}
	}
	return ""
}

func promType(k metricKind) string {
	switch k {
	case kindCounter, kindCounterFunc:
		return "counter"
	case kindHistogram:
		return "histogram"
	default:
		return "gauge"
	}
}

func writeSeries(w io.Writer, s *series) error {
	switch s.kind {
	case kindCounter:
		_, err := fmt.Fprintf(w, "%s %d\n", s.key, s.counter.Load())
		return err
	case kindCounterFunc:
		v := s.fn()
		if v < 0 {
			v = 0
		}
		_, err := fmt.Fprintf(w, "%s %s\n", s.key, formatFloat(v))
		return err
	case kindGauge:
		_, err := fmt.Fprintf(w, "%s %d\n", s.key, s.gauge.Load())
		return err
	case kindGaugeFunc:
		_, err := fmt.Fprintf(w, "%s %s\n", s.key, formatFloat(s.fn()))
		return err
	case kindHistogram:
		return writeHistogram(w, s)
	}
	return nil
}

func writeHistogram(w io.Writer, s *series) error {
	snap := s.hist.Snapshot()
	for i, cum := range snap.Cumulative {
		le := "+Inf"
		if i < len(snap.UpperBoundsSeconds) {
			le = formatFloat(snap.UpperBoundsSeconds[i])
		}
		if _, err := fmt.Fprintf(w, "%s %d\n", withLabel(s.name, s.key, "le", le), cum); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s %s\n", suffixKey(s.name, s.key, "_sum"), formatFloat(snap.SumSeconds)); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s %d\n", suffixKey(s.name, s.key, "_count"), snap.Count)
	return err
}

// withLabel renders name_bucket with the series' labels plus one extra
// label appended (the histogram's le).
func withLabel(name, key, extraKey, extraVal string) string {
	extra := extraKey + `="` + extraVal + `"`
	if labels, ok := strings.CutPrefix(key, name+"{"); ok {
		return name + "_bucket{" + strings.TrimSuffix(labels, "}") + "," + extra + "}"
	}
	return name + "_bucket{" + extra + "}"
}

// suffixKey turns name{labels} into name<suffix>{labels}.
func suffixKey(name, key, suffix string) string {
	if labels, ok := strings.CutPrefix(key, name+"{"); ok {
		return name + suffix + "{" + labels
	}
	return name + suffix
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
