// Package telemetry is the observability layer every Camus subsystem
// reports through: a dependency-free metrics registry (atomic counters,
// gauges, fixed-bucket latency histograms) plus a lightweight span tracer
// for control-plane operations.
//
// The design goals mirror the hardware the rest of the repo models. P4
// treats counters as first-class pipeline objects, and Packet
// Transactions argues measurement hooks must live inside the per-stage
// dataplane model to be trustworthy — so the hot-path instruments here
// are single atomic words that subsystems update in place, and the
// registry is only a naming layer over those words. Reading a metric
// never locks a packet path: snapshots and Prometheus scrapes read the
// same atomics the dataplane writes.
//
// Naming convention: camus_<subsystem>_<metric>, with _total suffix on
// counters and _seconds on duration histograms (Prometheus style). Label
// sets are small and fixed (e.g. table="stock", outcome="ok").
//
// Every instrument is nil-safe: methods on a nil *Counter, *Gauge,
// *Histogram, *Tracer, or a nil *Registry are no-ops (or return zero
// values), so instrumented code needs no "is telemetry on?" branches
// except where avoiding ancillary work (a time.Now call) matters.
package telemetry

import (
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter. The zero value is
// ready to use; a Counter embedded in a subsystem's stats struct can be
// adopted into a Registry with RegisterCounter, making the struct a view
// over the registry (one source of truth, two access paths).
type Counter struct {
	v atomic.Uint64
}

// Add increments the counter by n.
//camus:hotpath
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Load returns the current value.
func (c *Counter) Load() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic instantaneous value (occupancy, sizes, rates).
type Gauge struct {
	v atomic.Int64
}

// Set stores the gauge value.
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v.Store(v)
	}
}

// Add adjusts the gauge by delta.
func (g *Gauge) Add(delta int64) {
	if g != nil {
		g.v.Add(delta)
	}
}

// Load returns the current value.
func (g *Gauge) Load() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Label is one name=value metric dimension.
type Label struct {
	Key, Value string
}

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// seriesKey renders name plus a sorted, escaped label set in Prometheus
// form: name{k1="v1",k2="v2"}. It is both the registry map key and the
// exposition/snapshot identity of the series.
func seriesKey(name string, labels []Label) string {
	if len(labels) == 0 {
		return name
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// metricKind tags a registered series for exposition.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
	kindCounterFunc
	kindGaugeFunc
)

// series is one registered time series.
type series struct {
	name string // bare metric name (no labels)
	key  string // seriesKey(name, labels)
	kind metricKind
	help string

	counter *Counter
	gauge   *Gauge
	hist    *Histogram
	fn      func() float64 // kindCounterFunc / kindGaugeFunc
}

// Registry is a metrics namespace. Instrument creation takes a mutex;
// instrument updates are lock-free atomic operations on the returned
// pointers, so per-packet code holds no locks and shares no mutable state
// beyond single cache lines.
//
// All methods are safe for concurrent use. A nil *Registry is valid:
// get-or-create methods return detached instruments that still count but
// are not exported, so subsystems instrument unconditionally and the
// caller decides whether the numbers are observable.
type Registry struct {
	mu     sync.RWMutex
	series map[string]*series
	order  []string // registration order, for stable exposition
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{series: make(map[string]*series)}
}

// help registers/overrides the help string of a metric name.
func (r *Registry) setHelp(s *series, help string) {
	if help != "" {
		s.help = help
	}
}

// lookup returns the series for key, or nil.
func (r *Registry) lookup(key string) *series {
	r.mu.RLock()
	s := r.series[key]
	r.mu.RUnlock()
	return s
}

// insert adds a series under key unless one exists; returns the winner.
func (r *Registry) insert(key string, mk func() *series) *series {
	r.mu.Lock()
	defer r.mu.Unlock()
	if s, ok := r.series[key]; ok {
		return s
	}
	s := mk()
	r.series[key] = s
	r.order = append(r.order, key)
	return s
}

// Counter returns the counter registered under name+labels, creating it
// if needed. On a nil registry it returns a detached counter.
func (r *Registry) Counter(name string, labels ...Label) *Counter {
	if r == nil {
		return new(Counter)
	}
	key := seriesKey(name, labels)
	if s := r.lookup(key); s != nil && s.counter != nil {
		return s.counter
	}
	s := r.insert(key, func() *series {
		return &series{name: name, key: key, kind: kindCounter, counter: new(Counter)}
	})
	if s.counter == nil {
		return new(Counter) // name collision with a non-counter: detach
	}
	return s.counter
}

// RegisterCounter adopts an existing Counter (typically a stats-struct
// field) as the series name+labels. Re-registering the same series
// rebinds it, so a fresh subsystem instance takes over its series.
func (r *Registry) RegisterCounter(name string, c *Counter, labels ...Label) {
	if r == nil || c == nil {
		return
	}
	key := seriesKey(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if s, ok := r.series[key]; ok {
		s.kind, s.counter, s.gauge, s.hist, s.fn = kindCounter, c, nil, nil, nil
		return
	}
	r.series[key] = &series{name: name, key: key, kind: kindCounter, counter: c}
	r.order = append(r.order, key)
}

// Gauge returns the gauge registered under name+labels, creating it if
// needed. On a nil registry it returns a detached gauge.
func (r *Registry) Gauge(name string, labels ...Label) *Gauge {
	if r == nil {
		return new(Gauge)
	}
	key := seriesKey(name, labels)
	if s := r.lookup(key); s != nil && s.gauge != nil {
		return s.gauge
	}
	s := r.insert(key, func() *series {
		return &series{name: name, key: key, kind: kindGauge, gauge: new(Gauge)}
	})
	if s.gauge == nil {
		return new(Gauge)
	}
	return s.gauge
}

// Histogram returns the latency histogram registered under name+labels,
// creating it with the default bucket layout if needed. On a nil registry
// it returns a detached histogram.
func (r *Registry) Histogram(name string, labels ...Label) *Histogram {
	if r == nil {
		return NewHistogram()
	}
	key := seriesKey(name, labels)
	if s := r.lookup(key); s != nil && s.hist != nil {
		return s.hist
	}
	s := r.insert(key, func() *series {
		return &series{name: name, key: key, kind: kindHistogram, hist: NewHistogram()}
	})
	if s.hist == nil {
		return NewHistogram()
	}
	return s.hist
}

// CounterFunc registers a read-at-scrape counter series: fn is called
// when a snapshot or exposition is taken. Use for values derived from
// other atomics (e.g. per-table hits = packets − misses) so the hot path
// pays for at most one counter per event.
func (r *Registry) CounterFunc(name string, fn func() float64, labels ...Label) {
	r.registerFunc(name, kindCounterFunc, fn, labels)
}

// GaugeFunc registers a read-at-scrape gauge series.
func (r *Registry) GaugeFunc(name string, fn func() float64, labels ...Label) {
	r.registerFunc(name, kindGaugeFunc, fn, labels)
}

func (r *Registry) registerFunc(name string, kind metricKind, fn func() float64, labels []Label) {
	if r == nil || fn == nil {
		return
	}
	key := seriesKey(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if s, ok := r.series[key]; ok {
		s.kind, s.counter, s.gauge, s.hist, s.fn = kind, nil, nil, nil, fn
		return
	}
	r.series[key] = &series{name: name, key: key, kind: kind, fn: fn}
	r.order = append(r.order, key)
}

// Help sets the HELP string emitted for a metric name (applies to every
// series of that name).
func (r *Registry) Help(name, help string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, key := range r.order {
		if s := r.series[key]; s.name == name {
			r.setHelp(s, help)
		}
	}
}

// snapshotSeries returns the registered series in stable order.
func (r *Registry) snapshotSeries() []*series {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]*series, 0, len(r.order))
	for _, key := range r.order {
		out = append(out, r.series[key])
	}
	return out
}

// Telemetry bundles the registry and tracer one deployment shares across
// its compiler, control plane, pipeline, and dataplane. It is the value
// the top-level camus facade passes around (camus.WithTelemetry).
type Telemetry struct {
	Registry *Registry
	Tracer   *Tracer
}

// New returns a Telemetry with a fresh registry and a tracer retaining
// the default number of recent spans.
func New() *Telemetry {
	reg := NewRegistry()
	return &Telemetry{Registry: reg, Tracer: NewTracer(reg, 0)}
}

// Reg returns the registry, nil-safe.
func (t *Telemetry) Reg() *Registry {
	if t == nil {
		return nil
	}
	return t.Registry
}

// Trc returns the tracer, nil-safe.
func (t *Telemetry) Trc() *Tracer {
	if t == nil {
		return nil
	}
	return t.Tracer
}
