package telemetry

import (
	"context"
	"sync"
	"time"
)

// defaultSpanRing is how many completed spans a tracer retains.
const defaultSpanRing = 256

// SpanRecord is one completed control-plane operation, as it appears in
// snapshots (/debug/camus). Control-plane operations are rare relative to
// packets, so spans may allocate and take a mutex — they are not hot-path
// instruments.
type SpanRecord struct {
	Name      string            `json:"name"`
	Outcome   string            `json:"outcome"` // "ok", "error", or operation-specific
	Start     time.Time         `json:"start"`
	DurationS float64           `json:"duration_seconds"`
	Deadline  *time.Time        `json:"deadline,omitempty"` // from the operation's context
	Labels    map[string]string `json:"labels,omitempty"`
	Error     string            `json:"error,omitempty"`
}

// Tracer records spans for control-plane operations (installs, rollbacks,
// recompiles) into a bounded ring and mirrors them into the registry as
// per-operation outcome counters and duration histograms:
//
//	camus_<name>_total{outcome=...}
//	camus_<name>_seconds
//
// A nil *Tracer is valid; Start then returns a nil *Span whose methods
// are all no-ops, so traced code needs no enabled-checks.
type Tracer struct {
	reg  *Registry
	mu   sync.Mutex
	ring []SpanRecord
	next int
	full bool
}

// NewTracer returns a tracer retaining the last `ring` spans (0 means the
// default of 256). reg may be nil: spans are then only retained in the
// ring.
func NewTracer(reg *Registry, ring int) *Tracer {
	if ring <= 0 {
		ring = defaultSpanRing
	}
	return &Tracer{reg: reg, ring: make([]SpanRecord, ring)}
}

// Span is one in-flight operation.
type Span struct {
	tr       *Tracer
	name     string
	start    time.Time
	deadline *time.Time
	labels   map[string]string
}

// Start opens a span. The context is consulted for a deadline (recorded
// on the span so snapshot readers can see how close an install ran to its
// budget); cancellation is the caller's business.
func (t *Tracer) Start(ctx context.Context, name string, labels ...Label) *Span {
	if t == nil {
		return nil
	}
	s := &Span{tr: t, name: name, start: time.Now()}
	if ctx != nil {
		if dl, ok := ctx.Deadline(); ok {
			s.deadline = &dl
		}
	}
	for _, l := range labels {
		s.SetLabel(l.Key, l.Value)
	}
	return s
}

// SetLabel attaches or overwrites a label on the span.
func (s *Span) SetLabel(key, value string) {
	if s == nil {
		return
	}
	if s.labels == nil {
		s.labels = make(map[string]string, 4)
	}
	s.labels[key] = value
}

// End completes the span with outcome "ok" or "error" depending on err.
func (s *Span) End(err error) {
	if err != nil {
		s.EndOutcome("error", err)
		return
	}
	s.EndOutcome("ok", nil)
}

// EndOutcome completes the span with an explicit outcome label (e.g.
// "rolled_back", "admission_rejected").
func (s *Span) EndOutcome(outcome string, err error) {
	if s == nil {
		return
	}
	rec := SpanRecord{
		Name:      s.name,
		Outcome:   outcome,
		Start:     s.start,
		DurationS: time.Since(s.start).Seconds(),
		Deadline:  s.deadline,
		Labels:    s.labels,
	}
	if err != nil {
		rec.Error = err.Error()
	}
	t := s.tr
	t.mu.Lock()
	t.ring[t.next] = rec
	t.next++
	if t.next == len(t.ring) {
		t.next = 0
		t.full = true
	}
	t.mu.Unlock()

	t.reg.Counter("camus_"+s.name+"_total", L("outcome", outcome)).Inc()
	t.reg.Histogram("camus_" + s.name + "_seconds").Observe(time.Since(s.start))
}

// Spans returns the retained spans, oldest first.
func (t *Tracer) Spans() []SpanRecord {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	var out []SpanRecord
	if t.full {
		out = append(out, t.ring[t.next:]...)
	}
	out = append(out, t.ring[:t.next]...)
	return out
}
