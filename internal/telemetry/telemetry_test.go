package telemetry

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilInstrumentsAreNoOps(t *testing.T) {
	var c *Counter
	c.Add(3)
	c.Inc()
	if c.Load() != 0 {
		t.Error("nil counter should load 0")
	}
	var g *Gauge
	g.Set(7)
	g.Add(1)
	if g.Load() != 0 {
		t.Error("nil gauge should load 0")
	}
	var h *Histogram
	h.Observe(time.Second)
	if h.Count() != 0 || h.Sum() != 0 || h.Quantile(0.5) != 0 {
		t.Error("nil histogram should read as empty")
	}
	var tr *Tracer
	sp := tr.Start(context.Background(), "nothing")
	sp.SetLabel("k", "v")
	sp.End(nil)
	sp.EndOutcome("ok", nil)
	if tr.Spans() != nil {
		t.Error("nil tracer should have no spans")
	}
	var tel *Telemetry
	if tel.Reg() != nil || tel.Trc() != nil {
		t.Error("nil telemetry accessors should be nil")
	}
	if snap := tel.Snapshot(); len(snap.Counters) != 0 {
		t.Error("nil telemetry snapshot should be empty")
	}
}

func TestNilRegistryReturnsDetachedInstruments(t *testing.T) {
	var r *Registry
	c := r.Counter("x_total")
	c.Add(2)
	if c.Load() != 2 {
		t.Error("detached counter must still count")
	}
	if g := r.Gauge("x"); g == nil {
		t.Error("detached gauge must be usable")
	}
	h := r.Histogram("x_seconds")
	h.Observe(time.Millisecond)
	if h.Count() != 1 {
		t.Error("detached histogram must still observe")
	}
	r.RegisterCounter("y_total", c)
	r.CounterFunc("z_total", func() float64 { return 1 })
	r.Help("x_total", "help")
}

func TestRegistryGetOrCreateIdentity(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("camus_x_total", L("table", "stock"))
	b := r.Counter("camus_x_total", L("table", "stock"))
	if a != b {
		t.Error("same name+labels must return the same counter")
	}
	if c := r.Counter("camus_x_total", L("table", "price")); c == a {
		t.Error("different labels must return a different counter")
	}
	// Label order must not matter for identity.
	x := r.Counter("camus_y_total", L("a", "1"), L("b", "2"))
	y := r.Counter("camus_y_total", L("b", "2"), L("a", "1"))
	if x != y {
		t.Error("label order must not change series identity")
	}
}

func TestRegisterCounterAdoptsAndRebinds(t *testing.T) {
	r := NewRegistry()
	var stats struct{ Hits Counter }
	r.RegisterCounter("camus_hits_total", &stats.Hits)
	stats.Hits.Add(5)
	if got := r.Counter("camus_hits_total").Load(); got != 5 {
		t.Errorf("registry view = %d, want 5 (one source of truth)", got)
	}
	// A fresh subsystem instance takes over its series.
	var stats2 struct{ Hits Counter }
	r.RegisterCounter("camus_hits_total", &stats2.Hits)
	stats2.Hits.Add(1)
	if got := r.Counter("camus_hits_total").Load(); got != 1 {
		t.Errorf("rebind: registry view = %d, want 1", got)
	}
}

func TestHistogramCumulativeSemantics(t *testing.T) {
	h := NewHistogramBuckets([]time.Duration{time.Microsecond, time.Millisecond})
	h.Observe(500 * time.Nanosecond) // bucket 0
	h.Observe(time.Microsecond)      // bucket 0 (le is inclusive)
	h.Observe(2 * time.Microsecond)  // bucket 1
	h.Observe(time.Minute)           // +Inf bucket
	s := h.Snapshot()
	if s.Count != 4 {
		t.Fatalf("Count = %d, want 4", s.Count)
	}
	wantCum := []uint64{2, 3, 4}
	if len(s.Cumulative) != len(wantCum) {
		t.Fatalf("Cumulative = %v, want %v", s.Cumulative, wantCum)
	}
	for i, w := range wantCum {
		if s.Cumulative[i] != w {
			t.Errorf("Cumulative[%d] = %d, want %d", i, s.Cumulative[i], w)
		}
	}
	if s.Cumulative[len(s.Cumulative)-1] != s.Count {
		t.Error("+Inf bucket must equal Count")
	}
	if len(s.UpperBoundsSeconds) != 2 {
		t.Errorf("UpperBoundsSeconds = %v, want 2 bounds", s.UpperBoundsSeconds)
	}
	if got := h.Quantile(0.5); got != time.Microsecond {
		t.Errorf("Quantile(0.5) = %v, want %v", got, time.Microsecond)
	}
}

func TestPrometheusGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("camus_pipeline_packets_total").Add(42)
	r.Counter("camus_pipeline_table_hits_total", L("table", "stock")).Add(7)
	r.Counter("camus_pipeline_table_hits_total", L("table", "price")).Add(3)
	r.Gauge("camus_pipeline_sram_used").Set(1200)
	r.GaugeFunc("camus_pipeline_occupancy_ratio", func() float64 { return 0.5 })
	r.Help("camus_pipeline_packets_total", "Packets processed by the pipeline.")

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `# HELP camus_pipeline_packets_total Packets processed by the pipeline.
# TYPE camus_pipeline_packets_total counter
camus_pipeline_packets_total 42
# TYPE camus_pipeline_table_hits_total counter
camus_pipeline_table_hits_total{table="price"} 3
camus_pipeline_table_hits_total{table="stock"} 7
# TYPE camus_pipeline_sram_used gauge
camus_pipeline_sram_used 1200
# TYPE camus_pipeline_occupancy_ratio gauge
camus_pipeline_occupancy_ratio 0.5
`
	if got := b.String(); got != want {
		t.Errorf("exposition mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

func TestPrometheusHistogramExposition(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("camus_install_seconds", L("dev", "sw0"))
	h.Observe(3 * time.Microsecond)
	h.Observe(30 * time.Second) // beyond the top bound: +Inf only

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE camus_install_seconds histogram",
		`camus_install_seconds_bucket{dev="sw0",le="5e-06"} 1`,
		`camus_install_seconds_bucket{dev="sw0",le="+Inf"} 2`,
		`camus_install_seconds_count{dev="sw0"} 2`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	if !strings.Contains(out, `camus_install_seconds_sum{dev="sw0"} 30.000003`) {
		t.Errorf("exposition missing sum line:\n%s", out)
	}
	// Bucket counts must be cumulative: every bucket line's value must be
	// >= the previous one's.
	last := uint64(0)
	for _, line := range strings.Split(out, "\n") {
		if !strings.HasPrefix(line, "camus_install_seconds_bucket") {
			continue
		}
		var v uint64
		if _, err := fmt.Sscanf(line[strings.LastIndexByte(line, ' ')+1:], "%d", &v); err != nil {
			t.Fatalf("bad bucket line %q: %v", line, err)
		}
		if v < last {
			t.Errorf("bucket counts not cumulative at %q", line)
		}
		last = v
	}
}

// promLine is the promlint-style shape every exposition sample must have:
// metric name, optional label set, one float value.
var promLine = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="[^"]*"(,[a-zA-Z_][a-zA-Z0-9_]*="[^"]*")*\})? (\+Inf|-?[0-9]+(\.[0-9]+)?([eE][+-]?[0-9]+)?)$`)

func TestPrometheusLint(t *testing.T) {
	r := NewRegistry()
	r.Counter("camus_a_total").Inc()
	r.Counter("camus_b_total", L("outcome", "ok"), L("mode", "fast")).Inc()
	r.Gauge("camus_c").Set(-3)
	r.Histogram("camus_d_seconds").Observe(time.Millisecond)
	r.CounterFunc("camus_e_total", func() float64 { return 1.5 })

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	seenType := map[string]bool{}
	for _, line := range strings.Split(strings.TrimSuffix(b.String(), "\n"), "\n") {
		if strings.HasPrefix(line, "# TYPE ") {
			f := strings.Fields(line)
			if len(f) != 4 {
				t.Errorf("malformed TYPE line %q", line)
				continue
			}
			if seenType[f[2]] {
				t.Errorf("duplicate TYPE for %s", f[2])
			}
			seenType[f[2]] = true
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			continue
		}
		if !promLine.MatchString(line) {
			t.Errorf("sample line fails promlint shape: %q", line)
		}
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	tel := New()
	tel.Registry.Counter("camus_x_total").Add(9)
	tel.Registry.Gauge("camus_y").Set(-4)
	tel.Registry.Histogram("camus_z_seconds").Observe(2 * time.Millisecond)
	tel.Registry.CounterFunc("camus_neg_total", func() float64 { return -5 })
	sp := tel.Tracer.Start(context.Background(), "op", L("k", "v"))
	sp.End(errors.New("boom"))

	snap := tel.Snapshot()
	if snap.Counters["camus_x_total"] != 9 {
		t.Errorf("counter = %d, want 9", snap.Counters["camus_x_total"])
	}
	if snap.Counters["camus_neg_total"] != 0 {
		t.Error("negative derived counter must clamp to 0")
	}
	if snap.Gauges["camus_y"] != -4 {
		t.Errorf("gauge = %v, want -4", snap.Gauges["camus_y"])
	}
	if snap.Histograms["camus_z_seconds"].Count != 1 {
		t.Error("histogram missing from snapshot")
	}
	if len(snap.Spans) != 1 || snap.Spans[0].Outcome != "error" || snap.Spans[0].Error != "boom" {
		t.Errorf("spans = %+v, want one error span", snap.Spans)
	}

	raw, err := snap.MarshalIndent()
	if err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatalf("snapshot JSON does not round-trip: %v", err)
	}
	if back.Counters["camus_x_total"] != 9 {
		t.Error("round-tripped counter lost")
	}
}

func TestTracerMirrorsIntoRegistry(t *testing.T) {
	reg := NewRegistry()
	tr := NewTracer(reg, 2)
	for i := 0; i < 3; i++ {
		sp := tr.Start(context.Background(), "controlplane_install")
		sp.EndOutcome("ok", nil)
	}
	sp := tr.Start(context.Background(), "controlplane_install")
	sp.EndOutcome("rolled_back", errors.New("device write failed"))

	if got := reg.Counter("camus_controlplane_install_total", L("outcome", "ok")).Load(); got != 3 {
		t.Errorf("ok outcomes = %d, want 3", got)
	}
	if got := reg.Counter("camus_controlplane_install_total", L("outcome", "rolled_back")).Load(); got != 1 {
		t.Errorf("rolled_back outcomes = %d, want 1", got)
	}
	if got := reg.Histogram("camus_controlplane_install_seconds").Count(); got != 4 {
		t.Errorf("span durations observed = %d, want 4", got)
	}
	spans := tr.Spans()
	if len(spans) != 2 {
		t.Fatalf("ring retained %d spans, want 2", len(spans))
	}
	if spans[len(spans)-1].Outcome != "rolled_back" {
		t.Error("spans must be oldest-first; last must be the rollback")
	}
	// Context deadlines are recorded on the span.
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(time.Hour))
	defer cancel()
	tr.Start(ctx, "controlplane_install").End(nil)
	spans = tr.Spans()
	if spans[len(spans)-1].Deadline == nil {
		t.Error("span must record the context deadline")
	}
}

// TestRegistryConcurrency hammers get-or-create, updates, and readers
// concurrently; run with -race (CI does, with -count=2).
func TestRegistryConcurrency(t *testing.T) {
	reg := NewRegistry()
	tel := &Telemetry{Registry: reg, Tracer: NewTracer(reg, 16)}
	const workers = 8
	const iters = 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				reg.Counter("camus_conc_total", L("w", fmt.Sprint(w%4))).Inc()
				reg.Gauge("camus_conc_gauge").Set(int64(i))
				reg.Histogram("camus_conc_seconds").Observe(time.Duration(i) * time.Microsecond)
				if i%50 == 0 {
					sp := tel.Tracer.Start(context.Background(), "conc_op")
					sp.End(nil)
				}
			}
		}(w)
	}
	// Concurrent readers: snapshots and exposition while writers run.
	for rdr := 0; rdr < 2; rdr++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				_ = tel.Snapshot()
				var b strings.Builder
				_ = reg.WritePrometheus(&b)
			}
		}()
	}
	wg.Wait()

	var total uint64
	for w := 0; w < 4; w++ {
		total += reg.Counter("camus_conc_total", L("w", fmt.Sprint(w))).Load()
	}
	if want := uint64(workers * iters); total != want {
		t.Errorf("concurrent counter total = %d, want %d (lost updates)", total, want)
	}
	if got := reg.Histogram("camus_conc_seconds").Count(); got != uint64(workers*iters) {
		t.Errorf("histogram count = %d, want %d", got, workers*iters)
	}
}
