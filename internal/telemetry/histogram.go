package telemetry

import (
	"sync/atomic"
	"time"
)

// DefaultBuckets is the fixed latency bucket layout: a 1-2-5 decade sweep
// from 1µs to 10s. It covers everything the repo measures — sub-µs
// pipeline lookups land in the first bucket, end-to-end UDP latencies sit
// mid-range, and cold 100K-subscription recompiles fill the top decades.
// A fixed layout keeps Observe lock-free (no resizing, no mutex) and
// makes every histogram in a deployment mergeable bucket-by-bucket.
var DefaultBuckets = []time.Duration{
	1 * time.Microsecond, 2 * time.Microsecond, 5 * time.Microsecond,
	10 * time.Microsecond, 20 * time.Microsecond, 50 * time.Microsecond,
	100 * time.Microsecond, 200 * time.Microsecond, 500 * time.Microsecond,
	1 * time.Millisecond, 2 * time.Millisecond, 5 * time.Millisecond,
	10 * time.Millisecond, 20 * time.Millisecond, 50 * time.Millisecond,
	100 * time.Millisecond, 200 * time.Millisecond, 500 * time.Millisecond,
	1 * time.Second, 2 * time.Second, 5 * time.Second, 10 * time.Second,
}

// Histogram is a fixed-bucket duration histogram. Observe is a bounded
// linear scan plus three atomic adds — no mutex, no allocation — so it is
// safe on per-packet paths. The zero value is not usable; construct with
// NewHistogram (or Registry.Histogram).
type Histogram struct {
	bounds  []time.Duration // upper bounds, ascending; +Inf implied
	buckets []atomic.Uint64 // len(bounds)+1, last is the +Inf bucket
	count   atomic.Uint64
	sum     atomic.Int64 // nanoseconds
}

// NewHistogram returns a histogram with the default bucket layout.
func NewHistogram() *Histogram { return NewHistogramBuckets(DefaultBuckets) }

// NewHistogramBuckets returns a histogram with the given ascending upper
// bounds (an implicit +Inf bucket is appended).
func NewHistogramBuckets(bounds []time.Duration) *Histogram {
	return &Histogram{
		bounds:  append([]time.Duration(nil), bounds...),
		buckets: make([]atomic.Uint64, len(bounds)+1),
	}
}

// Observe records one duration sample.
//camus:hotpath
func (h *Histogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	i := 0
	for i < len(h.bounds) && d > h.bounds[i] {
		i++
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
	h.sum.Add(int64(d))
}

// Count returns the number of observed samples.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the total of all observed samples.
func (h *Histogram) Sum() time.Duration {
	if h == nil {
		return 0
	}
	return time.Duration(h.sum.Load())
}

// HistogramSnapshot is a point-in-time copy of a histogram, in the shape
// shared by /debug/camus and BENCH JSON files. Bucket counts are
// cumulative (Prometheus semantics): Cumulative[i] is the number of
// samples ≤ UpperBoundsSeconds[i], and the final entry is the +Inf bucket
// (== Count).
type HistogramSnapshot struct {
	Count              uint64    `json:"count"`
	SumSeconds         float64   `json:"sum_seconds"`
	UpperBoundsSeconds []float64 `json:"le_seconds"`
	Cumulative         []uint64  `json:"cumulative"`
}

// Snapshot copies the histogram. The copy is internally consistent enough
// for monitoring (each bucket is read atomically; a concurrent Observe
// may straddle the reads, as with hardware counters read mid-burst).
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	s := HistogramSnapshot{
		Count:              h.count.Load(),
		SumSeconds:         h.Sum().Seconds(),
		UpperBoundsSeconds: make([]float64, 0, len(h.bounds)+1),
		Cumulative:         make([]uint64, 0, len(h.buckets)),
	}
	var cum uint64
	for i := range h.buckets {
		cum += h.buckets[i].Load()
		if i < len(h.bounds) {
			s.UpperBoundsSeconds = append(s.UpperBoundsSeconds, h.bounds[i].Seconds())
		}
		s.Cumulative = append(s.Cumulative, cum)
	}
	// +Inf bound is represented as math.Inf in exposition; keep the JSON
	// array one shorter and let Cumulative's last entry be the total.
	return s
}

// Quantile estimates the q-quantile (0..1) from the bucket counts by
// attributing each bucket's mass to its upper bound — a conservative
// estimate suitable for dashboards, not for the paper's exact CDFs
// (internal/stats keeps raw samples for those).
func (h *Histogram) Quantile(q float64) time.Duration {
	if h == nil {
		return 0
	}
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	target := uint64(q * float64(total))
	if target == 0 {
		target = 1
	}
	var cum uint64
	for i := range h.buckets {
		cum += h.buckets[i].Load()
		if cum >= target {
			if i < len(h.bounds) {
				return h.bounds[i]
			}
			return h.bounds[len(h.bounds)-1] // +Inf bucket: report top bound
		}
	}
	return h.bounds[len(h.bounds)-1]
}
