package lang

import (
	"errors"
	"testing"
)

// TestRulePositions pins the 1-based line:col bookkeeping the analyzer's
// diagnostics depend on, across comments, blank lines, and indentation.
func TestRulePositions(t *testing.T) {
	src := "# leading comment\n" + // line 1
		"\n" + // line 2
		"stock == GOOGL && price > 50 : fwd(1)\n" + // line 3
		"  shares < 100 : drop()\n" // line 4, indented 2
	rules, err := ParseRules(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) != 2 {
		t.Fatalf("got %d rules, want 2", len(rules))
	}

	if got := rules[0].Pos; got != (Pos{Line: 3, Col: 1}) {
		t.Errorf("rule 0 Pos = %v, want 3:1", got)
	}
	and, ok := rules[0].Cond.(And)
	if !ok {
		t.Fatalf("rule 0 cond is %T, want And", rules[0].Cond)
	}
	if got := and.L.(Cmp).Pos; got != (Pos{Line: 3, Col: 1}) {
		t.Errorf("left atom Pos = %v, want 3:1", got)
	}
	if got := and.R.(Cmp).Pos; got != (Pos{Line: 3, Col: 19}) {
		t.Errorf("right atom Pos = %v, want 3:19", got)
	}
	if got := rules[0].Actions[0].Pos; got != (Pos{Line: 3, Col: 32}) {
		t.Errorf("action Pos = %v, want 3:32", got)
	}

	if got := rules[1].Pos; got != (Pos{Line: 4, Col: 3}) {
		t.Errorf("indented rule Pos = %v, want 4:3", got)
	}
	if got := rules[1].Actions[0].Pos; got != (Pos{Line: 4, Col: 18}) {
		t.Errorf("indented action Pos = %v, want 4:18", got)
	}
}

// TestDNFPreservesPositions: canonicalization to DNF must carry atom
// positions through, including through De Morgan rewrites — the analyzer
// anchors every pairwise diagnostic on them.
func TestDNFPreservesPositions(t *testing.T) {
	rules, err := ParseRules("!(price > 10 || shares == 3) : fwd(1)\n")
	if err != nil {
		t.Fatal(err)
	}
	d, err := ToDNF(rules[0])
	if err != nil {
		t.Fatal(err)
	}
	var atoms []Atom
	for _, c := range d.Conjunctions {
		atoms = append(atoms, c...)
	}
	if len(atoms) == 0 {
		t.Fatal("no atoms after DNF")
	}
	for _, a := range atoms {
		if !a.Pos.IsValid() {
			t.Errorf("atom %v lost its position in DNF rewriting", a)
		}
	}
}

// TestSyntaxErrorChain pins the error contract: every parse failure
// matches errors.Is(err, ErrSyntax) and exposes a *SyntaxError with a
// usable position via errors.As, even when wrapped.
func TestSyntaxErrorChain(t *testing.T) {
	_, err := ParseRules("stock == GOOGL : fwd(1)\nprice > : fwd(2)\n")
	if err == nil {
		t.Fatal("expected a parse error")
	}
	if !errors.Is(err, ErrSyntax) {
		t.Errorf("errors.Is(err, ErrSyntax) = false for %v", err)
	}
	var se *SyntaxError
	if !errors.As(err, &se) {
		t.Fatalf("errors.As(*SyntaxError) = false for %v", err)
	}
	if se.Line != 2 {
		t.Errorf("SyntaxError.Line = %d, want 2", se.Line)
	}
	if p := se.Position(); p.Line != 2 || p.Col < 1 {
		t.Errorf("Position() = %v, want a valid line-2 position", p)
	}

	// Wrapping must not break the chain.
	wrapped := errorsJoin("while checking", err)
	if !errors.Is(wrapped, ErrSyntax) {
		t.Error("wrapped error no longer matches ErrSyntax")
	}
	if !errors.As(wrapped, &se) {
		t.Error("wrapped error no longer yields *SyntaxError")
	}

	// Non-syntax errors must not match.
	if errors.Is(errors.New("boom"), ErrSyntax) {
		t.Error("unrelated error matches ErrSyntax")
	}
}

func errorsJoin(msg string, err error) error {
	return &wrapErr{msg: msg, err: err}
}

type wrapErr struct {
	msg string
	err error
}

func (w *wrapErr) Error() string { return w.msg + ": " + w.err.Error() }
func (w *wrapErr) Unwrap() error { return w.err }

// TestParseOutputUnchangedByPositions is the differential check for the
// position-threading refactor: rendering a parsed rule set must produce
// exactly the canonical text it produced before positions existed —
// positions ride along in dedicated fields and never leak into String().
func TestParseOutputUnchangedByPositions(t *testing.T) {
	cases := []struct{ src, want string }{
		{"stock == GOOGL : fwd(1)", "stock == GOOGL : fwd(1)"},
		{"  stock  ==  GOOGL  :  fwd( 1 , 2 )", "stock == GOOGL : fwd(1,2)"},
		{"stock == GOOGL && price > 50 : fwd(1)", "(stock == GOOGL && price > 50) : fwd(1)"},
		{"!(stock == AAPL) : drop()", "!stock == AAPL : drop()"},
		{"true : fwd(9)", "true : fwd(9)"},
		{"a == 1 || b == 2 : fwd(3); drop()", "(a == 1 || b == 2) : fwd(3); drop()"},
	}
	for _, tc := range cases {
		r, err := ParseRule(tc.src)
		if err != nil {
			t.Fatalf("ParseRule(%q): %v", tc.src, err)
		}
		if got := r.String(); got != tc.want {
			t.Errorf("String() of %q = %q, want %q", tc.src, got, tc.want)
		}
		// And the rendering is a fixed point: re-parsing does not shift
		// positions into the output either.
		r2, err := ParseRule(r.String())
		if err != nil {
			t.Fatalf("re-parse of %q: %v", r.String(), err)
		}
		if r2.String() != r.String() {
			t.Errorf("round trip unstable: %q -> %q", r.String(), r2.String())
		}
	}
	// Programmatic rules (zero Pos) render identically to parsed ones.
	pr := Rule{
		Cond:    Cmp{LHS: Operand{Field: "stock"}, Op: OpEq, RHS: Symbol("GOOGL")},
		Actions: []Action{Fwd(1)},
	}
	parsed, err := ParseRule("stock == GOOGL : fwd(1)")
	if err != nil {
		t.Fatal(err)
	}
	if pr.String() != parsed.String() {
		t.Errorf("programmatic %q != parsed %q", pr.String(), parsed.String())
	}
}
