package lang

import (
	"math/rand"
	"testing"
)

func mustRule(t *testing.T, src string) Rule {
	t.Helper()
	r, err := ParseRule(src)
	if err != nil {
		t.Fatalf("ParseRule(%q): %v", src, err)
	}
	return r
}

func TestToDNFSimpleConjunction(t *testing.T) {
	r := mustRule(t, "stock == GOOGL && price > 50 : fwd(1)")
	d, err := ToDNF(r)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Conjunctions) != 1 || len(d.Conjunctions[0]) != 2 {
		t.Fatalf("want 1 conjunction of 2 atoms, got %+v", d.Conjunctions)
	}
}

func TestToDNFDistributes(t *testing.T) {
	r := mustRule(t, "(a == 1 || b == 2) && (c == 3 || d == 4) : fwd(1)")
	d, err := ToDNF(r)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Conjunctions) != 4 {
		t.Fatalf("want 4 conjunctions, got %d: %v", len(d.Conjunctions), d.Conjunctions)
	}
}

func TestToDNFNegationPushing(t *testing.T) {
	r := mustRule(t, "!(a == 1 && b > 2) : fwd(1)")
	d, err := ToDNF(r)
	if err != nil {
		t.Fatal(err)
	}
	// !(a==1 && b>2) == a!=1 || b<=2
	if len(d.Conjunctions) != 2 {
		t.Fatalf("want 2 conjunctions, got %v", d.Conjunctions)
	}
	ops := map[CmpOp]bool{}
	for _, c := range d.Conjunctions {
		for _, a := range c {
			ops[a.Op] = true
		}
	}
	if !ops[OpNeq] || !ops[OpLe] {
		t.Fatalf("negation not pushed to atoms: %v", d.Conjunctions)
	}
}

func TestToDNFDoubleNegation(t *testing.T) {
	r := mustRule(t, "!!(a == 1) : fwd(1)")
	d, err := ToDNF(r)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Conjunctions) != 1 || d.Conjunctions[0][0].Op != OpEq {
		t.Fatalf("double negation not eliminated: %v", d.Conjunctions)
	}
}

func TestToDNFDropsContradictions(t *testing.T) {
	r := mustRule(t, "a == 1 && a == 2 : fwd(1)")
	d, err := ToDNF(r)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Conjunctions) != 0 {
		t.Fatalf("contradictory conjunction survived: %v", d.Conjunctions)
	}
	r2 := mustRule(t, "a == 1 && a != 1 : fwd(1)")
	d2, err := ToDNF(r2)
	if err != nil {
		t.Fatal(err)
	}
	if len(d2.Conjunctions) != 0 {
		t.Fatalf("eq/neq contradiction survived: %v", d2.Conjunctions)
	}
}

func TestToDNFDeduplicatesAtomsAndTerms(t *testing.T) {
	r := mustRule(t, "a == 1 && a == 1 : fwd(1)")
	d, err := ToDNF(r)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Conjunctions) != 1 || len(d.Conjunctions[0]) != 1 {
		t.Fatalf("duplicate atom not merged: %v", d.Conjunctions)
	}
	r2 := mustRule(t, "a == 1 || a == 1 : fwd(1)")
	d2, err := ToDNF(r2)
	if err != nil {
		t.Fatal(err)
	}
	if len(d2.Conjunctions) != 1 {
		t.Fatalf("duplicate conjunction not merged: %v", d2.Conjunctions)
	}
}

func TestToDNFNegatedTrue(t *testing.T) {
	r := Rule{Cond: Not{X: True{}}, Actions: []Action{Fwd(1)}}
	d, err := ToDNF(r)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Conjunctions) != 0 {
		t.Fatalf("!true should have no conjunctions, got %v", d.Conjunctions)
	}
}

// evalExpr is a reference evaluator for conditions over an assignment.
func evalExpr(e Expr, env map[string]uint64) bool {
	switch e := e.(type) {
	case True:
		return true
	case And:
		return evalExpr(e.L, env) && evalExpr(e.R, env)
	case Or:
		return evalExpr(e.L, env) || evalExpr(e.R, env)
	case Not:
		return !evalExpr(e.X, env)
	case Cmp:
		v := env[e.LHS.String()]
		switch e.Op {
		case OpEq:
			return v == e.RHS.Num
		case OpNeq:
			return v != e.RHS.Num
		case OpLt:
			return v < e.RHS.Num
		case OpGt:
			return v > e.RHS.Num
		case OpLe:
			return v <= e.RHS.Num
		default:
			return v >= e.RHS.Num
		}
	}
	panic("unknown expr")
}

func evalDNF(d DNFRule, env map[string]uint64) bool {
	for _, c := range d.Conjunctions {
		all := true
		for _, a := range c {
			if !evalExpr(Cmp(a), env) {
				all = false
				break
			}
		}
		if all {
			return true
		}
	}
	return false
}

// randomExpr builds a random condition over variables a..d with values 0..7.
func randomExpr(r *rand.Rand, depth int) Expr {
	if depth == 0 || r.Intn(3) == 0 {
		field := string(rune('a' + r.Intn(4)))
		op := CmpOp(r.Intn(6))
		return Cmp{LHS: Operand{Field: field}, Op: op, RHS: Number(uint64(r.Intn(8)))}
	}
	switch r.Intn(3) {
	case 0:
		return And{L: randomExpr(r, depth-1), R: randomExpr(r, depth-1)}
	case 1:
		return Or{L: randomExpr(r, depth-1), R: randomExpr(r, depth-1)}
	default:
		return Not{X: randomExpr(r, depth-1)}
	}
}

// TestDNFEquivalenceProperty checks that normalization preserves the
// condition's truth table on random expressions and assignments.
func TestDNFEquivalenceProperty(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	for trial := 0; trial < 300; trial++ {
		e := randomExpr(r, 4)
		rule := Rule{Cond: e, Actions: []Action{Fwd(1)}}
		d, err := ToDNF(rule)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for probe := 0; probe < 50; probe++ {
			env := map[string]uint64{
				"a": uint64(r.Intn(8)), "b": uint64(r.Intn(8)),
				"c": uint64(r.Intn(8)), "d": uint64(r.Intn(8)),
			}
			want := evalExpr(e, env)
			got := evalDNF(d, env)
			if got != want {
				t.Fatalf("trial %d: DNF differs on %v\nexpr: %s\ndnf: %v\nwant %v got %v",
					trial, env, e, d.Conjunctions, want, got)
			}
		}
	}
}

func TestDNFBlowupGuard(t *testing.T) {
	// Build (a==0||a==1) && (b==0||b==1) && ... beyond the term cap by
	// using enough conjuncts of wide disjunctions.
	var e Expr = Or{L: Cmp{LHS: Operand{Field: "x0"}, Op: OpEq, RHS: Number(0)}, R: Cmp{LHS: Operand{Field: "x0"}, Op: OpEq, RHS: Number(1)}}
	cur := e
	for i := 1; i < 20; i++ {
		f := Operand{Field: "x" + string(rune('0'+i%10))}
		or := Or{L: Cmp{LHS: f, Op: OpEq, RHS: Number(0)}, R: Cmp{LHS: f, Op: OpEq, RHS: Number(1)}}
		cur = And{L: cur, R: or}
	}
	_, err := ToDNF(Rule{Cond: cur, Actions: []Action{Fwd(1)}})
	if err == nil {
		t.Fatal("expected DNF blowup error")
	}
}
