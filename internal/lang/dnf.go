package lang

import (
	"fmt"
	"sort"

	"camus/internal/conc"
)

// MaxDNFTerms caps the number of conjunctions a single rule may expand to
// during DNF normalization, guarding against pathological (exponential)
// conditions. 64 predicates of alternating ∧/∨ stay well below this.
const MaxDNFTerms = 1 << 16

// ToDNF normalizes a rule's condition into disjunctive normal form: a set
// of conjunctions of atomic predicates, as required by the BDD builder
// (§3.2 "The subscription rules are first normalized into disjunctive
// form"). Structurally contradictory conjunctions (x == 5 && x == 6) are
// dropped; duplicate atoms are merged. The empty conjunction denotes
// "always true".
func ToDNF(r Rule) (DNFRule, error) {
	terms, err := dnf(r.Cond)
	if err != nil {
		return DNFRule{}, fmt.Errorf("rule %d: %w", r.ID, err)
	}
	out := DNFRule{Actions: r.Actions, ID: r.ID}
	seen := make(map[string]bool)
	for _, t := range terms {
		c, ok := simplifyConjunction(t)
		if !ok {
			continue // contradiction: never matches
		}
		key := c.String()
		if seen[key] {
			continue
		}
		seen[key] = true
		out.Conjunctions = append(out.Conjunctions, c)
	}
	return out, nil
}

// NormalizeAll applies ToDNF to each rule.
func NormalizeAll(rules []Rule) ([]DNFRule, error) {
	return NormalizeAllParallel(rules, 1)
}

// NormalizeAllParallel normalizes rules across a worker pool. Each rule is
// independent, so the output (and the first error, chosen by rule order)
// is identical to the serial NormalizeAll.
func NormalizeAllParallel(rules []Rule, workers int) ([]DNFRule, error) {
	out := make([]DNFRule, len(rules))
	if workers <= 1 || len(rules) < 2*minParallelRules {
		for i, r := range rules {
			d, err := ToDNF(r)
			if err != nil {
				return nil, err
			}
			out[i] = d
		}
		return out, nil
	}
	errs := make([]error, len(rules))
	conc.ForEach(len(rules), workers, func(i int) {
		out[i], errs[i] = ToDNF(rules[i])
	})
	if err := conc.FirstError(errs); err != nil {
		return nil, err
	}
	return out, nil
}

// minParallelRules is the per-worker batch below which goroutine fan-out
// costs more than it saves.
const minParallelRules = 256

// dnf converts an expression in negation-normal form to DNF term lists.
// Negations are pushed down on the fly (there is no separate NNF pass).
func dnf(e Expr) ([]Conjunction, error) {
	switch e := e.(type) {
	case True:
		return []Conjunction{{}}, nil
	case Cmp:
		return []Conjunction{{Atom(e)}}, nil
	case Not:
		return dnfNegated(e.X)
	case Or:
		l, err := dnf(e.L)
		if err != nil {
			return nil, err
		}
		r, err := dnf(e.R)
		if err != nil {
			return nil, err
		}
		if len(l)+len(r) > MaxDNFTerms {
			return nil, fmt.Errorf("condition expands to more than %d DNF terms", MaxDNFTerms)
		}
		return append(l, r...), nil
	case And:
		l, err := dnf(e.L)
		if err != nil {
			return nil, err
		}
		r, err := dnf(e.R)
		if err != nil {
			return nil, err
		}
		if len(l)*len(r) > MaxDNFTerms {
			return nil, fmt.Errorf("condition expands to more than %d DNF terms", MaxDNFTerms)
		}
		out := make([]Conjunction, 0, len(l)*len(r))
		for _, a := range l {
			for _, b := range r {
				c := make(Conjunction, 0, len(a)+len(b))
				c = append(c, a...)
				c = append(c, b...)
				out = append(out, c)
			}
		}
		return out, nil
	case nil:
		return nil, fmt.Errorf("nil condition")
	default:
		return nil, fmt.Errorf("unknown expression type %T", e)
	}
}

// dnfNegated computes dnf(!e) using De Morgan's laws.
func dnfNegated(e Expr) ([]Conjunction, error) {
	switch e := e.(type) {
	case True:
		return nil, nil // !true matches nothing: empty disjunction
	case Cmp:
		return []Conjunction{{Atom{LHS: e.LHS, Op: e.Op.Negate(), RHS: e.RHS, Pos: e.Pos}}}, nil
	case Not:
		return dnf(e.X)
	case And: // !(a && b) == !a || !b
		return dnf(Or{L: Not{X: e.L}, R: Not{X: e.R}})
	case Or: // !(a || b) == !a && !b
		return dnf(And{L: Not{X: e.L}, R: Not{X: e.R}})
	case nil:
		return nil, fmt.Errorf("nil condition")
	default:
		return nil, fmt.Errorf("unknown expression type %T", e)
	}
}

// simplifyConjunction canonicalizes a conjunction: atoms are sorted and
// deduplicated, and structurally contradictory combinations on the same
// operand are detected. It returns ok=false when the conjunction can never
// match. Numeric (interval-level) contradictions that depend on field
// widths are detected later by the BDD builder.
func simplifyConjunction(c Conjunction) (Conjunction, bool) {
	sorted := append(Conjunction(nil), c...)
	sort.Slice(sorted, func(i, j int) bool { return atomLess(sorted[i], sorted[j]) })
	out := sorted[:0]
	for i, a := range sorted {
		// Compare with SameAtom, not struct equality: the same predicate
		// written at two source positions must still deduplicate, keeping
		// normalized output identical to the pre-position parser's.
		if i > 0 && a.SameAtom(sorted[i-1]) {
			continue
		}
		out = append(out, a)
	}
	// Detect equality contradictions per operand.
	eqSeen := make(map[string]Value)
	for _, a := range out {
		key := a.LHS.String()
		switch a.Op {
		case OpEq:
			if prev, ok := eqSeen[key]; ok && prev != a.RHS {
				return nil, false // x == v1 && x == v2, v1 != v2
			}
			eqSeen[key] = a.RHS
		}
	}
	for _, a := range out {
		if a.Op == OpNeq {
			if prev, ok := eqSeen[a.LHS.String()]; ok && prev == a.RHS {
				return nil, false // x == v && x != v
			}
		}
	}
	return out, true
}

func atomLess(a, b Atom) bool {
	if a.LHS.Field != b.LHS.Field {
		return a.LHS.Field < b.LHS.Field
	}
	if a.LHS.Agg != b.LHS.Agg {
		return a.LHS.Agg < b.LHS.Agg
	}
	if a.Op != b.Op {
		return a.Op < b.Op
	}
	if a.RHS.Kind != b.RHS.Kind {
		return a.RHS.Kind < b.RHS.Kind
	}
	if a.RHS.Num != b.RHS.Num {
		return a.RHS.Num < b.RHS.Num
	}
	return a.RHS.Sym < b.RHS.Sym
}
