package lang

import (
	"fmt"
	"strconv"
)

// Parser is a recursive-descent parser for subscription rule sets.
//
// Grammar (terminals in caps):
//
//	rules   := (rule (NEWLINE | EOF))*
//	rule    := cond ':' actions
//	cond    := orExpr
//	orExpr  := andExpr ('||' andExpr)*
//	andExpr := unary ('&&' unary)*
//	unary   := '!' unary | '(' cond ')' | atom | 'true'
//	atom    := operand CMPOP value
//	operand := IDENT key? | IDENT '(' IDENT ')' key?
//	key     := '[' IDENT ']'
//	value   := NUMBER | STRING | IDENT
//	actions := action (';' action)*
//	action  := 'fwd' '(' ports ')' | 'drop' '(' ')' | IDENT key? '<-' IDENT '(' args ')'
//
// The optional key suffix addresses stateful operands per flow key: a
// keyed state read (src_count[pkt.src]), a keyed aggregate
// (avg(temp)[sensor_id]), or a keyed update (hits[pkt.src] <- count()).
type Parser struct {
	lex  *Lexer
	tok  Token
	peek *Token
}

// NewParser returns a parser over src.
func NewParser(src string) *Parser {
	return &Parser{lex: NewLexer(src)}
}

// ParseRules parses src as a newline-separated list of subscription rules.
func ParseRules(src string) ([]Rule, error) {
	p := NewParser(src)
	return p.Rules()
}

// ParseRule parses a single subscription rule.
func ParseRule(src string) (Rule, error) {
	rules, err := ParseRules(src)
	if err != nil {
		return Rule{}, err
	}
	if len(rules) != 1 {
		return Rule{}, fmt.Errorf("expected exactly one rule, got %d", len(rules))
	}
	return rules[0], nil
}

// ParseCondition parses a bare condition expression (no action part).
func ParseCondition(src string) (Expr, error) {
	p := NewParser(src)
	if err := p.next(); err != nil {
		return nil, err
	}
	e, err := p.parseOr()
	if err != nil {
		return nil, err
	}
	for p.tok.Kind == TokNewline {
		if err := p.next(); err != nil {
			return nil, err
		}
	}
	if p.tok.Kind != TokEOF {
		return nil, errAt(p.tok.Line, p.tok.Col, "unexpected %v after condition", p.tok)
	}
	return e, nil
}

func (p *Parser) next() error {
	if p.peek != nil {
		p.tok = *p.peek
		p.peek = nil
		return nil
	}
	t, err := p.lex.Next()
	if err != nil {
		return err
	}
	p.tok = t
	return nil
}

func (p *Parser) peekTok() (Token, error) {
	if p.peek == nil {
		t, err := p.lex.Next()
		if err != nil {
			return Token{}, err
		}
		p.peek = &t
	}
	return *p.peek, nil
}

func (p *Parser) expect(k TokenKind) (Token, error) {
	if p.tok.Kind != k {
		return Token{}, errAt(p.tok.Line, p.tok.Col, "expected %v, found %v", k, p.tok)
	}
	t := p.tok
	err := p.next()
	return t, err
}

// Rules parses the entire input as a rule set.
func (p *Parser) Rules() ([]Rule, error) {
	if err := p.next(); err != nil {
		return nil, err
	}
	var rules []Rule
	for {
		for p.tok.Kind == TokNewline {
			if err := p.next(); err != nil {
				return nil, err
			}
		}
		if p.tok.Kind == TokEOF {
			return rules, nil
		}
		r, err := p.parseRule()
		if err != nil {
			return nil, err
		}
		r.ID = len(rules)
		rules = append(rules, r)
		switch p.tok.Kind {
		case TokNewline:
			if err := p.next(); err != nil {
				return nil, err
			}
		case TokEOF:
			return rules, nil
		default:
			return nil, errAt(p.tok.Line, p.tok.Col, "expected newline after rule, found %v", p.tok)
		}
	}
}

func (p *Parser) parseRule() (Rule, error) {
	pos := Pos{Line: p.tok.Line, Col: p.tok.Col}
	cond, err := p.parseOr()
	if err != nil {
		return Rule{}, err
	}
	if _, err := p.expect(TokColon); err != nil {
		return Rule{}, err
	}
	actions, err := p.parseActions()
	if err != nil {
		return Rule{}, err
	}
	return Rule{Cond: cond, Actions: actions, Pos: pos}, nil
}

func (p *Parser) parseOr() (Expr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.tok.Kind == TokOr {
		if err := p.next(); err != nil {
			return nil, err
		}
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = Or{L: l, R: r}
	}
	return l, nil
}

func (p *Parser) parseAnd() (Expr, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for p.tok.Kind == TokAnd {
		if err := p.next(); err != nil {
			return nil, err
		}
		r, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		l = And{L: l, R: r}
	}
	return l, nil
}

func (p *Parser) parseUnary() (Expr, error) {
	switch p.tok.Kind {
	case TokNot:
		if err := p.next(); err != nil {
			return nil, err
		}
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return Not{X: x}, nil
	case TokLParen:
		if err := p.next(); err != nil {
			return nil, err
		}
		e, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokRParen); err != nil {
			return nil, err
		}
		return e, nil
	case TokIdent:
		if p.tok.Text == "true" {
			if err := p.next(); err != nil {
				return nil, err
			}
			return True{}, nil
		}
		return p.parseAtom()
	default:
		return nil, errAt(p.tok.Line, p.tok.Col, "expected condition, found %v", p.tok)
	}
}

func (p *Parser) parseAtom() (Expr, error) {
	ident, err := p.expect(TokIdent)
	if err != nil {
		return nil, err
	}
	operand := Operand{Field: ident.Text}
	if p.tok.Kind == TokLParen {
		// Aggregate macro: avg(price), count(...), ...
		if err := p.next(); err != nil {
			return nil, err
		}
		field, err := p.expect(TokIdent)
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokRParen); err != nil {
			return nil, err
		}
		operand = Operand{Agg: ident.Text, Field: field.Text}
	}
	if p.tok.Kind == TokLBracket {
		// Keyed state: var[key] or agg(field)[key].
		if err := p.next(); err != nil {
			return nil, err
		}
		key, err := p.expect(TokIdent)
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokRBracket); err != nil {
			return nil, err
		}
		operand.Key = key.Text
	}
	var op CmpOp
	switch p.tok.Kind {
	case TokEq:
		op = OpEq
	case TokNeq:
		op = OpNeq
	case TokLt:
		op = OpLt
	case TokGt:
		op = OpGt
	case TokLe:
		op = OpLe
	case TokGe:
		op = OpGe
	default:
		return nil, errAt(p.tok.Line, p.tok.Col, "expected relational operator, found %v", p.tok)
	}
	if err := p.next(); err != nil {
		return nil, err
	}
	val, err := p.parseValue()
	if err != nil {
		return nil, err
	}
	return Cmp{LHS: operand, Op: op, RHS: val, Pos: Pos{Line: ident.Line, Col: ident.Col}}, nil
}

func (p *Parser) parseValue() (Value, error) {
	switch p.tok.Kind {
	case TokNumber:
		v := Number(p.tok.Num)
		return v, p.next()
	case TokString:
		v := Symbol(p.tok.Text)
		return v, p.next()
	case TokIdent:
		// A bareword in value position is a symbolic constant (GOOGL).
		v := Symbol(p.tok.Text)
		return v, p.next()
	default:
		return Value{}, errAt(p.tok.Line, p.tok.Col, "expected value, found %v", p.tok)
	}
}

func (p *Parser) parseActions() ([]Action, error) {
	var actions []Action
	for {
		a, err := p.parseAction()
		if err != nil {
			return nil, err
		}
		actions = append(actions, a)
		if p.tok.Kind != TokSemicolon {
			return actions, nil
		}
		if err := p.next(); err != nil {
			return nil, err
		}
	}
}

func (p *Parser) parseAction() (Action, error) {
	ident, err := p.expect(TokIdent)
	if err != nil {
		return Action{}, err
	}
	pos := Pos{Line: ident.Line, Col: ident.Col}
	switch ident.Text {
	case "fwd", "forward":
		ports, err := p.parsePortList()
		if err != nil {
			return Action{}, err
		}
		if len(ports) == 0 {
			return Action{}, errAt(ident.Line, ident.Col, "fwd() requires at least one port")
		}
		a := Fwd(ports...)
		a.Pos = pos
		return a, nil
	case "drop":
		if _, err := p.expect(TokLParen); err != nil {
			return Action{}, err
		}
		if _, err := p.expect(TokRParen); err != nil {
			return Action{}, err
		}
		a := Drop()
		a.Pos = pos
		return a, nil
	}
	// State update: var <- func(args), or keyed var[key] <- func(args).
	stateKey := ""
	if p.tok.Kind == TokLBracket {
		if err := p.next(); err != nil {
			return Action{}, err
		}
		key, err := p.expect(TokIdent)
		if err != nil {
			return Action{}, err
		}
		if _, err := p.expect(TokRBracket); err != nil {
			return Action{}, err
		}
		stateKey = key.Text
	}
	if p.tok.Kind != TokArrow {
		return Action{}, errAt(p.tok.Line, p.tok.Col, "expected 'fwd', 'drop' or '<-' in action, found %v", p.tok)
	}
	if err := p.next(); err != nil {
		return Action{}, err
	}
	fn, err := p.expect(TokIdent)
	if err != nil {
		return Action{}, err
	}
	if _, err := p.expect(TokLParen); err != nil {
		return Action{}, err
	}
	var args []string
	for p.tok.Kind == TokIdent {
		args = append(args, p.tok.Text)
		if err := p.next(); err != nil {
			return Action{}, err
		}
		if p.tok.Kind != TokComma {
			break
		}
		if err := p.next(); err != nil {
			return Action{}, err
		}
	}
	if _, err := p.expect(TokRParen); err != nil {
		return Action{}, err
	}
	a := StateUpdate(ident.Text, fn.Text, args...)
	a.StateKey = stateKey
	a.Pos = pos
	return a, nil
}

func (p *Parser) parsePortList() ([]int, error) {
	if _, err := p.expect(TokLParen); err != nil {
		return nil, err
	}
	var ports []int
	for {
		t, err := p.expect(TokNumber)
		if err != nil {
			return nil, err
		}
		if t.Num > uint64(maxPort) {
			return nil, errAt(t.Line, t.Col, "port %s out of range (max %d)", t.Text, maxPort)
		}
		ports = append(ports, int(t.Num))
		if p.tok.Kind != TokComma {
			break
		}
		if err := p.next(); err != nil {
			return nil, err
		}
	}
	if _, err := p.expect(TokRParen); err != nil {
		return nil, err
	}
	return ports, nil
}

// maxPort bounds the port numbers accepted by fwd() actions. Real switches
// have hundreds of ports; the generous bound mostly guards against typos.
const maxPort = 1 << 16

// FormatPorts renders a port list the way the language prints it.
func FormatPorts(ports []int) string {
	b := make([]byte, 0, len(ports)*4)
	for i, p := range ports {
		if i > 0 {
			b = append(b, ',')
		}
		b = strconv.AppendInt(b, int64(p), 10)
	}
	return string(b)
}
