package lang

import (
	"strings"
	"testing"
)

func TestParsePaperExamples(t *testing.T) {
	// The four example rules from §2 of the paper.
	cases := []string{
		"ip.dst == 192.168.0.1 : fwd(1)",
		"stock == GOOGL : fwd(1)",
		"stock == GOOGL : fwd(1,2,3)",
		"stock == GOOGL && avg(price) > 50 : fwd(1)",
	}
	for _, src := range cases {
		r, err := ParseRule(src)
		if err != nil {
			t.Fatalf("ParseRule(%q): %v", src, err)
		}
		if r.Cond == nil || len(r.Actions) == 0 {
			t.Fatalf("ParseRule(%q): incomplete rule %+v", src, r)
		}
	}
}

func TestParseIPv4Literal(t *testing.T) {
	r, err := ParseRule("ip.dst == 192.168.0.1 : fwd(1)")
	if err != nil {
		t.Fatal(err)
	}
	cmp := r.Cond.(Cmp)
	want := uint64(192)<<24 | uint64(168)<<16 | 1
	if cmp.RHS.Kind != ValNumber || cmp.RHS.Num != want {
		t.Fatalf("IPv4 literal parsed as %+v, want %d", cmp.RHS, want)
	}
}

func TestParseMulticastPorts(t *testing.T) {
	r, err := ParseRule("stock == GOOGL : fwd(3,1,2)")
	if err != nil {
		t.Fatal(err)
	}
	a := r.Actions[0]
	if a.Kind != ActFwd || len(a.Ports) != 3 {
		t.Fatalf("bad action %+v", a)
	}
	// Ports are canonicalized to sorted order.
	if a.Ports[0] != 1 || a.Ports[1] != 2 || a.Ports[2] != 3 {
		t.Fatalf("ports not sorted: %v", a.Ports)
	}
}

func TestParseAggregate(t *testing.T) {
	r, err := ParseRule("stock == GOOGL && avg(price) > 50 : fwd(1)")
	if err != nil {
		t.Fatal(err)
	}
	and := r.Cond.(And)
	agg := and.R.(Cmp)
	if !agg.LHS.IsAggregate() || agg.LHS.Agg != "avg" || agg.LHS.Field != "price" {
		t.Fatalf("aggregate operand parsed as %+v", agg.LHS)
	}
}

func TestParseStateUpdateAction(t *testing.T) {
	r, err := ParseRule("stock == GOOGL : fwd(1); my_counter <- count()")
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Actions) != 2 {
		t.Fatalf("want 2 actions, got %d", len(r.Actions))
	}
	upd := r.Actions[1]
	if upd.Kind != ActState || upd.Var != "my_counter" || upd.Func != "count" {
		t.Fatalf("bad state action %+v", upd)
	}
}

func TestParseMultipleRulesAndComments(t *testing.T) {
	src := `
# market data split
stock == GOOGL : fwd(1)
stock == MSFT && price > 100 : fwd(2)   // hot path
// a negated rule
!(stock == AAPL) : fwd(3)

stock == ORCL || stock == IBM : fwd(4)
`
	rules, err := ParseRules(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) != 4 {
		t.Fatalf("want 4 rules, got %d", len(rules))
	}
	for i, r := range rules {
		if r.ID != i {
			t.Fatalf("rule %d has ID %d", i, r.ID)
		}
	}
}

func TestParsePrecedence(t *testing.T) {
	// && binds tighter than ||.
	e, err := ParseCondition("a == 1 || b == 2 && c == 3")
	if err != nil {
		t.Fatal(err)
	}
	or, ok := e.(Or)
	if !ok {
		t.Fatalf("top level should be Or, got %T", e)
	}
	if _, ok := or.R.(And); !ok {
		t.Fatalf("right of Or should be And, got %T", or.R)
	}
	// Parentheses override.
	e2, err := ParseCondition("(a == 1 || b == 2) && c == 3")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := e2.(And); !ok {
		t.Fatalf("parenthesized Or under And, got %T", e2)
	}
}

func TestParseUnicodeOperators(t *testing.T) {
	e, err := ParseCondition("stock == GOOGL ∧ price > 50 ∨ shares < 10")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := e.(Or); !ok {
		t.Fatalf("want Or at top, got %T", e)
	}
}

func TestParseKeywordOperators(t *testing.T) {
	e, err := ParseCondition("stock == GOOGL and not price > 50")
	if err != nil {
		t.Fatal(err)
	}
	and, ok := e.(And)
	if !ok {
		t.Fatalf("want And, got %T", e)
	}
	if _, ok := and.R.(Not); !ok {
		t.Fatalf("want Not on right, got %T", and.R)
	}
}

func TestParseQuotedSymbols(t *testing.T) {
	r, err := ParseRule(`stock == "BRK.A" : fwd(1)`)
	if err != nil {
		t.Fatal(err)
	}
	cmp := r.Cond.(Cmp)
	if cmp.RHS.Sym != "BRK.A" {
		t.Fatalf("quoted symbol parsed as %q", cmp.RHS.Sym)
	}
}

func TestParseHexLiteral(t *testing.T) {
	r, err := ParseRule("eth.type == 0x0800 : fwd(1)")
	if err != nil {
		t.Fatal(err)
	}
	if r.Cond.(Cmp).RHS.Num != 0x0800 {
		t.Fatalf("hex literal wrong: %+v", r.Cond)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"stock = GOOGL : fwd(1)",                      // single '='
		"stock == GOOGL",                              // missing action
		"stock == GOOGL : fwd()",                      // empty port list
		": fwd(1)",                                    // missing condition
		"stock == GOOGL : fly(1)",                     // unknown action
		"stock == : fwd(1)",                           // missing value
		"price > 10 fwd(1)",                           // missing colon
		"stock == \"unterminated",                     // bad string
		"price > 99999999999999999999999999 : fwd(1)", // overflow
		"a == 1 & b == 2 : fwd(1)",                    // single '&'
		"fwd(70000) : fwd(70000)",                     // port out of range (and bad cond)
	}
	for _, src := range bad {
		if _, err := ParseRules(src); err == nil {
			t.Errorf("ParseRules(%q) should fail", src)
		}
	}
}

func TestRuleStringRoundTrip(t *testing.T) {
	srcs := []string{
		"stock == GOOGL : fwd(1)",
		"stock == GOOGL && price > 50 : fwd(1,2)",
		"!(stock == AAPL) : drop()",
	}
	for _, src := range srcs {
		r, err := ParseRule(src)
		if err != nil {
			t.Fatal(err)
		}
		r2, err := ParseRule(r.String())
		if err != nil {
			t.Fatalf("re-parse of %q (from %q): %v", r.String(), src, err)
		}
		if r2.String() != r.String() {
			t.Fatalf("round trip unstable: %q -> %q", r.String(), r2.String())
		}
	}
}

func TestParseTrueCondition(t *testing.T) {
	r, err := ParseRule("true : fwd(9)")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := r.Cond.(True); !ok {
		t.Fatalf("want True condition, got %T", r.Cond)
	}
}

func TestSyntaxErrorHasPosition(t *testing.T) {
	_, err := ParseRules("stock == GOOGL : fwd(1)\nprice > : fwd(2)")
	if err == nil {
		t.Fatal("expected error")
	}
	if !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("error should carry line info: %v", err)
	}
}

func TestParseKeyedOperands(t *testing.T) {
	r, err := ParseRule("hits[pkt.src] >= 100 && avg(temp)[sensor_id] > 30 : fwd(1)")
	if err != nil {
		t.Fatal(err)
	}
	and := r.Cond.(And)
	plain := and.L.(Cmp)
	if plain.LHS.Field != "hits" || plain.LHS.Key != "pkt.src" || plain.LHS.Agg != "" {
		t.Fatalf("keyed state read parsed as %+v", plain.LHS)
	}
	if !plain.LHS.IsKeyed() {
		t.Fatal("IsKeyed() false for keyed operand")
	}
	agg := and.R.(Cmp)
	if agg.LHS.Agg != "avg" || agg.LHS.Field != "temp" || agg.LHS.Key != "sensor_id" {
		t.Fatalf("keyed aggregate parsed as %+v", agg.LHS)
	}
	// String() round-trips through the parser.
	rt, err := ParseRule(r.String())
	if err != nil {
		t.Fatalf("round-trip of %q: %v", r.String(), err)
	}
	if rt.String() != r.String() {
		t.Fatalf("round-trip mismatch: %q vs %q", rt.String(), r.String())
	}
}

func TestParseKeyedStateUpdate(t *testing.T) {
	r, err := ParseRule("true : hits[pkt.src] <- count(); temp[sensor_id] <- sample(iot.value)")
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Actions) != 2 {
		t.Fatalf("want 2 actions, got %d", len(r.Actions))
	}
	a := r.Actions[0]
	if a.Kind != ActState || a.Var != "hits" || a.StateKey != "pkt.src" || a.Func != "count" {
		t.Fatalf("bad keyed update %+v", a)
	}
	b := r.Actions[1]
	if b.StateKey != "sensor_id" || b.Func != "sample" || len(b.Args) != 1 || b.Args[0] != "iot.value" {
		t.Fatalf("bad keyed update %+v", b)
	}
	if got, want := a.String(), "hits[pkt.src] <- count()"; got != want {
		t.Fatalf("String() = %q, want %q", got, want)
	}
	if a.Equal(b) {
		t.Fatal("distinct keyed updates compare Equal")
	}
	if c := KeyedStateUpdate("hits", "pkt.src", "count"); !a.Equal(c) {
		t.Fatalf("KeyedStateUpdate not Equal to parsed action: %+v vs %+v", a, c)
	}
	// Round-trip.
	rt, err := ParseRule(r.String())
	if err != nil {
		t.Fatalf("round-trip of %q: %v", r.String(), err)
	}
	if rt.String() != r.String() {
		t.Fatalf("round-trip mismatch: %q vs %q", rt.String(), r.String())
	}
}

func TestParseKeyedErrors(t *testing.T) {
	for _, src := range []string{
		"hits[ >= 1 : fwd(1)",
		"hits[1] >= 1 : fwd(1)",
		"hits[pkt.src >= 1 : fwd(1)",
		"true : hits[ <- count()",
		"true : hits[pkt.src <- count()",
	} {
		if _, err := ParseRule(src); err == nil {
			t.Errorf("ParseRule(%q): want error, got nil", src)
		}
	}
}
