package lang

import (
	"fmt"
	"sort"
	"strings"
)

// Pos is a source position (1-based line and column) attached to AST
// nodes by the parser. The zero Pos means "no position" (programmatically
// built rules).
type Pos struct {
	Line, Col int
}

// IsValid reports whether the position was produced by a parser.
func (p Pos) IsValid() bool { return p.Line > 0 }

func (p Pos) String() string {
	if !p.IsValid() {
		return "-"
	}
	return fmt.Sprintf("%d:%d", p.Line, p.Col)
}

// CmpOp is a relational operator in an atomic predicate. The surface
// language of Figure 1 has ==, < and >; negation during DNF rewriting
// introduces the complements !=, >= and <=.
type CmpOp int

// Relational operators.
const (
	OpEq CmpOp = iota
	OpNeq
	OpLt
	OpGt
	OpLe
	OpGe
)

var cmpOpNames = [...]string{"==", "!=", "<", ">", "<=", ">="}

func (op CmpOp) String() string { return cmpOpNames[op] }

// Negate returns the complementary operator (¬(a == b) ⇒ a != b, etc).
func (op CmpOp) Negate() CmpOp {
	switch op {
	case OpEq:
		return OpNeq
	case OpNeq:
		return OpEq
	case OpLt:
		return OpGe
	case OpGt:
		return OpLe
	case OpLe:
		return OpGt
	default: // OpGe
		return OpLt
	}
}

// Operand is the left-hand side of an atomic predicate: a header field,
// a state variable, or an aggregate macro over a field (e.g. avg(price)).
// A non-empty Key makes the stateful operand *keyed*: the state is
// addressed per distinct value of the key header field, e.g.
// src_count[source] or avg(temp)[sensor_id].
type Operand struct {
	Field string // header field name, e.g. "add_order.price" or "ip.dst"
	Agg   string // aggregate macro name ("avg", "sum", ...); empty if none
	Key   string // key header field for keyed state, e.g. "pkt.src"; empty if unkeyed
}

// IsAggregate reports whether the operand is a stateful aggregate macro.
func (o Operand) IsAggregate() bool { return o.Agg != "" }

// IsKeyed reports whether the operand addresses per-key state.
func (o Operand) IsKeyed() bool { return o.Key != "" }

func (o Operand) String() string {
	s := o.Field
	if o.Agg != "" {
		s = fmt.Sprintf("%s(%s)", o.Agg, o.Field)
	}
	if o.Key != "" {
		s += "[" + o.Key + "]"
	}
	return s
}

// ValueKind distinguishes numeric from symbolic constants.
type ValueKind int

// Value kinds.
const (
	ValNumber ValueKind = iota
	ValSymbol           // bareword or quoted string constant, e.g. GOOGL
)

// Value is the right-hand side constant of an atomic predicate. Symbolic
// values are resolved to numeric encodings against the message format
// specification at compile time.
type Value struct {
	Kind ValueKind
	Num  uint64
	Sym  string
}

// Number returns a numeric Value.
func Number(n uint64) Value { return Value{Kind: ValNumber, Num: n} }

// Symbol returns a symbolic (string) Value.
func Symbol(s string) Value { return Value{Kind: ValSymbol, Sym: s} }

func (v Value) String() string {
	if v.Kind == ValSymbol {
		if isBareSymbol(v.Sym) {
			return v.Sym
		}
		return fmt.Sprintf("%q", v.Sym)
	}
	return fmt.Sprintf("%d", v.Num)
}

// isBareSymbol reports whether a symbol can be printed without quotes and
// re-parse to the same value: identifier-shaped and not a keyword.
func isBareSymbol(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		ident := c == '_' || c == '.' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
		if !ident || (i == 0 && ((c >= '0' && c <= '9') || c == '.')) {
			return false
		}
	}
	switch strings.ToLower(s) {
	case "and", "or", "not", "true", "fwd", "forward", "drop":
		return false
	}
	return true
}

// Expr is a boolean condition over packet contents.
type Expr interface {
	exprNode()
	String() string
}

// And is conjunction.
type And struct{ L, R Expr }

// Or is disjunction.
type Or struct{ L, R Expr }

// Not is negation.
type Not struct{ X Expr }

// Cmp is an atomic relational predicate: Operand op Value.
//
// Cmp and Atom must keep the same field sequence: DNF rewriting converts
// between them with a direct struct conversion.
type Cmp struct {
	LHS Operand
	Op  CmpOp
	RHS Value
	Pos Pos // position of the operand, when parsed from source
}

// True is the always-true condition (an empty conjunction; used for
// default/catch-all rules).
type True struct{}

func (And) exprNode()  {}
func (Or) exprNode()   {}
func (Not) exprNode()  {}
func (Cmp) exprNode()  {}
func (True) exprNode() {}

func (e And) String() string  { return fmt.Sprintf("(%s && %s)", e.L, e.R) }
func (e Or) String() string   { return fmt.Sprintf("(%s || %s)", e.L, e.R) }
func (e Not) String() string  { return fmt.Sprintf("!%s", e.X) }
func (e True) String() string { return "true" }
func (e Cmp) String() string  { return fmt.Sprintf("%s %s %s", e.LHS, e.Op, e.RHS) }

// ActionKind enumerates the action forms of Figure 1.
type ActionKind int

// Action kinds.
const (
	ActFwd ActionKind = iota
	ActDrop
	ActState // v <- f(args)
)

// Action is one element of a rule's action list. Forwarding actions carry
// the output port set (unicast when len==1, multicast otherwise). State
// actions name the state variable, the update function, and its arguments;
// a non-empty StateKey makes the update keyed (v[key] <- f(args)), one
// state cell per distinct value of the key header field.
type Action struct {
	Kind     ActionKind
	Ports    []int    // ActFwd
	Var      string   // ActState: destination state variable
	StateKey string   // ActState: key header field for keyed state; empty if unkeyed
	Func     string   // ActState: update function, e.g. "count", "add"
	Args     []string // ActState: argument names (fields or variables)
	Pos      Pos      // position of the action keyword, when parsed
}

// Fwd builds a forwarding action for the given ports.
func Fwd(ports ...int) Action {
	sorted := append([]int(nil), ports...)
	sort.Ints(sorted)
	return Action{Kind: ActFwd, Ports: sorted}
}

// Drop builds a drop action.
func Drop() Action { return Action{Kind: ActDrop} }

// StateUpdate builds a state-update action v <- f(args...).
func StateUpdate(v, fn string, args ...string) Action {
	return Action{Kind: ActState, Var: v, Func: fn, Args: args}
}

// KeyedStateUpdate builds a keyed state-update action v[key] <- f(args...).
func KeyedStateUpdate(v, key, fn string, args ...string) Action {
	return Action{Kind: ActState, Var: v, StateKey: key, Func: fn, Args: args}
}

func (a Action) String() string {
	switch a.Kind {
	case ActFwd:
		parts := make([]string, len(a.Ports))
		for i, p := range a.Ports {
			parts[i] = fmt.Sprintf("%d", p)
		}
		return fmt.Sprintf("fwd(%s)", strings.Join(parts, ","))
	case ActDrop:
		return "drop()"
	default:
		v := a.Var
		if a.StateKey != "" {
			v += "[" + a.StateKey + "]"
		}
		return fmt.Sprintf("%s <- %s(%s)", v, a.Func, strings.Join(a.Args, ","))
	}
}

// Equal reports structural equality of actions, ignoring source
// positions.
func (a Action) Equal(b Action) bool {
	if a.Kind != b.Kind || a.Var != b.Var || a.StateKey != b.StateKey || a.Func != b.Func {
		return false
	}
	if len(a.Ports) != len(b.Ports) || len(a.Args) != len(b.Args) {
		return false
	}
	for i := range a.Ports {
		if a.Ports[i] != b.Ports[i] {
			return false
		}
	}
	for i := range a.Args {
		if a.Args[i] != b.Args[i] {
			return false
		}
	}
	return true
}

// Key returns a canonical string for the action, usable as a map key.
func (a Action) Key() string { return a.String() }

// Rule is a condition-action subscription rule (r ::= c : a in Figure 1).
type Rule struct {
	Cond    Expr
	Actions []Action
	// ID is the rule's position in its source rule set; useful in
	// diagnostics and for deterministic ordering.
	ID int
	// Pos is the source position of the rule's first token, when the
	// rule was parsed from source.
	Pos Pos
}

func (r Rule) String() string {
	acts := make([]string, len(r.Actions))
	for i, a := range r.Actions {
		acts[i] = a.String()
	}
	return fmt.Sprintf("%s : %s", r.Cond, strings.Join(acts, "; "))
}

// Atom is an atomic predicate in a DNF conjunction. The field sequence
// must mirror Cmp (see there).
type Atom struct {
	LHS Operand
	Op  CmpOp
	RHS Value
	Pos Pos
}

func (a Atom) String() string { return fmt.Sprintf("%s %s %s", a.LHS, a.Op, a.RHS) }

// SameAtom reports equality of the predicate itself, ignoring source
// positions. DNF canonicalization dedups with this so that the same
// predicate written twice at different positions still collapses.
func (a Atom) SameAtom(b Atom) bool {
	return a.LHS == b.LHS && a.Op == b.Op && a.RHS == b.RHS
}

// Conjunction is a set of atoms that must all hold.
type Conjunction []Atom

func (c Conjunction) String() string {
	if len(c) == 0 {
		return "true"
	}
	parts := make([]string, len(c))
	for i, a := range c {
		parts[i] = a.String()
	}
	return strings.Join(parts, " && ")
}

// DNFRule is a rule whose condition has been normalized to a disjunction
// of conjunctions. Each conjunction independently triggers the actions.
type DNFRule struct {
	Conjunctions []Conjunction
	Actions      []Action
	ID           int
}
