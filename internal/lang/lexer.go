package lang

import (
	"strconv"
	"strings"
)

// Lexer turns subscription source text into tokens. Newlines are
// significant (they terminate rules), so the lexer emits TokNewline for
// line breaks that follow a token.
type Lexer struct {
	src  string
	pos  int
	line int
	col  int
	// pendingNL suppresses duplicate newline tokens for blank lines.
	lastWasNewline bool
	started        bool
}

// NewLexer returns a lexer over src.
func NewLexer(src string) *Lexer {
	return &Lexer{src: src, line: 1, col: 1, lastWasNewline: true}
}

func (l *Lexer) peekByte() (byte, bool) {
	if l.pos >= len(l.src) {
		return 0, false
	}
	return l.src[l.pos], true
}

func (l *Lexer) advance() byte {
	c := l.src[l.pos]
	l.pos++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

// Next returns the next token, or an error for malformed input.
func (l *Lexer) Next() (Token, error) {
	for {
		c, ok := l.peekByte()
		if !ok {
			return Token{Kind: TokEOF, Line: l.line, Col: l.col}, nil
		}
		switch {
		case c == '\n':
			line, col := l.line, l.col
			l.advance()
			if l.lastWasNewline {
				continue // collapse blank lines
			}
			l.lastWasNewline = true
			return Token{Kind: TokNewline, Line: line, Col: col}, nil
		case c == ' ' || c == '\t' || c == '\r':
			l.advance()
		case c == '#':
			l.skipLineComment()
		case c == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '/':
			l.skipLineComment()
		default:
			tok, err := l.lexToken()
			if err != nil {
				return Token{}, err
			}
			l.lastWasNewline = false
			return tok, nil
		}
	}
}

func (l *Lexer) skipLineComment() {
	for {
		c, ok := l.peekByte()
		if !ok || c == '\n' {
			return
		}
		l.advance()
	}
}

func (l *Lexer) lexToken() (Token, error) {
	line, col := l.line, l.col
	c := l.advance()
	mk := func(k TokenKind, text string) Token {
		return Token{Kind: k, Text: text, Line: line, Col: col}
	}
	switch c {
	case '(':
		return mk(TokLParen, "("), nil
	case ')':
		return mk(TokRParen, ")"), nil
	case '[':
		return mk(TokLBracket, "["), nil
	case ']':
		return mk(TokRBracket, "]"), nil
	case ',':
		return mk(TokComma, ","), nil
	case ':':
		return mk(TokColon, ":"), nil
	case ';':
		return mk(TokSemicolon, ";"), nil
	case '!':
		if n, ok := l.peekByte(); ok && n == '=' {
			l.advance()
			return mk(TokNeq, "!="), nil
		}
		return mk(TokNot, "!"), nil
	case '&':
		if n, ok := l.peekByte(); ok && n == '&' {
			l.advance()
			return mk(TokAnd, "&&"), nil
		}
		return Token{}, errAt(line, col, "unexpected '&' (use '&&')")
	case '|':
		if n, ok := l.peekByte(); ok && n == '|' {
			l.advance()
			return mk(TokOr, "||"), nil
		}
		return Token{}, errAt(line, col, "unexpected '|' (use '||')")
	case '=':
		if n, ok := l.peekByte(); ok && n == '=' {
			l.advance()
			return mk(TokEq, "=="), nil
		}
		return Token{}, errAt(line, col, "unexpected '=' (use '==')")
	case '<':
		if n, ok := l.peekByte(); ok {
			switch n {
			case '=':
				l.advance()
				return mk(TokLe, "<="), nil
			case '-':
				l.advance()
				return mk(TokArrow, "<-"), nil
			}
		}
		return mk(TokLt, "<"), nil
	case '>':
		if n, ok := l.peekByte(); ok && n == '=' {
			l.advance()
			return mk(TokGe, ">="), nil
		}
		return mk(TokGt, ">"), nil
	case '"', '\'':
		return l.lexString(c, line, col)
	}
	if c >= 0x80 {
		// Unicode operators ∧ ∨ (multi-byte); back up and decode.
		l.pos--
		l.col--
		rest := l.src[l.pos:]
		switch {
		case strings.HasPrefix(rest, "∧"):
			l.pos += len("∧")
			l.col++
			return Token{Kind: TokAnd, Text: "∧", Line: line, Col: col}, nil
		case strings.HasPrefix(rest, "∨"):
			l.pos += len("∨")
			l.col++
			return Token{Kind: TokOr, Text: "∨", Line: line, Col: col}, nil
		}
		return Token{}, errAt(line, col, "unexpected character %q", l.src[l.pos:l.pos+1])
	}
	switch {
	case c >= '0' && c <= '9':
		return l.lexNumber(c, line, col)
	case isIdentStart(rune(c)):
		return l.lexIdent(c, line, col)
	}
	return Token{}, errAt(line, col, "unexpected character %q", c)
}

func (l *Lexer) lexString(quote byte, line, col int) (Token, error) {
	var b strings.Builder
	for {
		c, ok := l.peekByte()
		if !ok || c == '\n' {
			return Token{}, errAt(line, col, "unterminated string literal")
		}
		l.advance()
		if c == quote {
			return Token{Kind: TokString, Text: b.String(), Line: line, Col: col}, nil
		}
		if c == '\\' {
			n, ok := l.peekByte()
			if !ok {
				return Token{}, errAt(line, col, "unterminated escape in string literal")
			}
			l.advance()
			switch n {
			case '\\', '"', '\'':
				b.WriteByte(n)
			default:
				return Token{}, errAt(line, col, "unknown escape \\%c", n)
			}
			continue
		}
		// Symbols name packet field contents (stock tickers, session
		// ids); those are printable ASCII on the wire, so the language
		// only admits printable ASCII literals.
		if c < 0x20 || c > 0x7e {
			return Token{}, errAt(line, col, "non-printable byte 0x%02x in string literal", c)
		}
		b.WriteByte(c)
	}
}

func (l *Lexer) lexNumber(first byte, line, col int) (Token, error) {
	var b strings.Builder
	b.WriteByte(first)
	base := 10
	if first == '0' {
		if c, ok := l.peekByte(); ok && (c == 'x' || c == 'X') {
			l.advance()
			b.Reset()
			base = 16
		}
	}
	for {
		c, ok := l.peekByte()
		if !ok {
			break
		}
		if isDigit(c, base) || c == '_' {
			l.advance()
			if c != '_' {
				b.WriteByte(c)
			}
			continue
		}
		// An IPv4 dotted quad like 192.168.0.1 lexes as a single number.
		if base == 10 && c == '.' && l.pos+1 < len(l.src) && l.src[l.pos+1] >= '0' && l.src[l.pos+1] <= '9' {
			return l.lexIPv4(b.String(), line, col)
		}
		break
	}
	text := b.String()
	if text == "" {
		return Token{}, errAt(line, col, "malformed numeric literal")
	}
	n, err := strconv.ParseUint(text, base, 64)
	if err != nil {
		return Token{}, errAt(line, col, "malformed numeric literal %q", text)
	}
	return Token{Kind: TokNumber, Text: text, Num: n, Line: line, Col: col}, nil
}

// lexIPv4 finishes lexing a dotted-quad IPv4 literal whose first octet has
// already been consumed. The token value is the 32-bit big-endian address.
func (l *Lexer) lexIPv4(firstOctet string, line, col int) (Token, error) {
	octets := []string{firstOctet}
	for len(octets) < 4 {
		c, ok := l.peekByte()
		if !ok || c != '.' {
			break
		}
		l.advance()
		var b strings.Builder
		for {
			c, ok := l.peekByte()
			if !ok || c < '0' || c > '9' {
				break
			}
			l.advance()
			b.WriteByte(c)
		}
		if b.Len() == 0 {
			return Token{}, errAt(line, col, "malformed IPv4 literal")
		}
		octets = append(octets, b.String())
	}
	if len(octets) != 4 {
		return Token{}, errAt(line, col, "malformed IPv4 literal")
	}
	var v uint64
	for _, o := range octets {
		n, err := strconv.ParseUint(o, 10, 8)
		if err != nil {
			return Token{}, errAt(line, col, "IPv4 octet %q out of range", o)
		}
		v = v<<8 | n
	}
	text := strings.Join(octets, ".")
	return Token{Kind: TokNumber, Text: text, Num: v, Line: line, Col: col}, nil
}

func isIdentStart(r rune) bool {
	return r == '_' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z')
}

func isDigit(c byte, base int) bool {
	if base == 16 {
		return (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')
	}
	return c >= '0' && c <= '9'
}

func (l *Lexer) lexIdent(first byte, line, col int) (Token, error) {
	var b strings.Builder
	b.WriteByte(first)
	for {
		c, ok := l.peekByte()
		if !ok {
			break
		}
		if isIdentStart(rune(c)) || (c >= '0' && c <= '9') || c == '.' {
			l.advance()
			b.WriteByte(c)
			continue
		}
		break
	}
	text := b.String()
	switch strings.ToLower(text) {
	case "and":
		return Token{Kind: TokAnd, Text: text, Line: line, Col: col}, nil
	case "or":
		return Token{Kind: TokOr, Text: text, Line: line, Col: col}, nil
	case "not":
		return Token{Kind: TokNot, Text: text, Line: line, Col: col}, nil
	}
	return Token{Kind: TokIdent, Text: text, Line: line, Col: col}, nil
}
