package lang

import (
	"strings"
	"testing"
)

// FuzzParseRules checks the parser never panics and that anything it
// accepts round-trips through String() to an equivalent parse.
func FuzzParseRules(f *testing.F) {
	seeds := []string{
		"stock == GOOGL : fwd(1)",
		"ip.dst == 192.168.0.1 : fwd(1)",
		"stock == GOOGL && avg(price) > 50 : fwd(1)",
		"a == 1 || b < 2 && !(c > 3) : fwd(1,2,3); v <- count()",
		"true : drop()",
		"price >= 0x1f : fwd(2)\n# comment\nx != 7 : fwd(3)",
		"s == \"BRK.A\" : fwd(1)",
		"a == 1 ∧ b == 2 ∨ c == 3 : fwd(4)",
		": fwd(1)",
		"stock == GOOGL : fwd(",
		strings.Repeat("(", 100),
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		rules, err := ParseRules(src)
		if err != nil {
			return
		}
		for _, r := range rules {
			re, err := ParseRule(r.String())
			if err != nil {
				t.Fatalf("accepted rule %q does not re-parse: %v", r.String(), err)
			}
			if re.String() != r.String() {
				t.Fatalf("round trip unstable: %q -> %q", r.String(), re.String())
			}
			// DNF must not panic on anything parseable (it may reject
			// with an error on blowup).
			if _, err := ToDNF(r); err != nil && !strings.Contains(err.Error(), "DNF terms") {
				t.Fatalf("ToDNF(%q): %v", r.String(), err)
			}
		}
	})
}
