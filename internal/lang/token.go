// Package lang implements the packet subscription language of Figure 1 in
// the paper: condition-action rules whose conditions are boolean
// combinations (∧, ∨, !) of relational atoms over packet header fields and
// state variables, and whose actions forward packets and update state.
//
// The package provides the lexer, recursive-descent parser, AST, and the
// disjunctive-normal-form rewriter that the compiler consumes.
package lang

import (
	"errors"
	"fmt"
)

// TokenKind enumerates lexical token types.
type TokenKind int

// Token kinds.
const (
	TokEOF TokenKind = iota
	TokIdent
	TokNumber
	TokString
	TokLParen
	TokRParen
	TokLBracket
	TokRBracket
	TokComma
	TokColon
	TokSemicolon
	TokAnd   // && or ∧ or keyword "and"
	TokOr    // || or ∨ or keyword "or"
	TokNot   // ! or keyword "not"
	TokEq    // ==
	TokNeq   // !=
	TokLt    // <
	TokGt    // >
	TokLe    // <=
	TokGe    // >=
	TokArrow // <-
	TokNewline
)

var tokenNames = map[TokenKind]string{
	TokEOF: "end of input", TokIdent: "identifier", TokNumber: "number",
	TokString: "string", TokLParen: "'('", TokRParen: "')'",
	TokLBracket: "'['", TokRBracket: "']'",
	TokComma: "','", TokColon: "':'", TokSemicolon: "';'",
	TokAnd: "'&&'", TokOr: "'||'", TokNot: "'!'",
	TokEq: "'=='", TokNeq: "'!='", TokLt: "'<'", TokGt: "'>'",
	TokLe: "'<='", TokGe: "'>='", TokArrow: "'<-'", TokNewline: "newline",
}

func (k TokenKind) String() string {
	if s, ok := tokenNames[k]; ok {
		return s
	}
	return fmt.Sprintf("token(%d)", int(k))
}

// Token is a lexical token with its source position.
type Token struct {
	Kind TokenKind
	Text string
	Num  uint64 // valid when Kind == TokNumber
	Line int
	Col  int
}

func (t Token) String() string {
	if t.Text != "" {
		return fmt.Sprintf("%v %q", t.Kind, t.Text)
	}
	return t.Kind.String()
}

// ErrSyntax is the sentinel all lexing/parsing failures match, so
// callers can classify without depending on the concrete type:
//
//	if errors.Is(err, lang.ErrSyntax) { ... }
//
// The position and message are still available through errors.As with a
// *SyntaxError target, even when the error has been wrapped.
var ErrSyntax = errors.New("syntax error")

// SyntaxError describes a lexing or parsing failure with position info.
type SyntaxError struct {
	Line, Col int
	Msg       string
}

func (e *SyntaxError) Error() string {
	return fmt.Sprintf("line %d:%d: %s", e.Line, e.Col, e.Msg)
}

// Is makes errors.Is(err, ErrSyntax) hold for any syntax error.
func (e *SyntaxError) Is(target error) bool { return target == ErrSyntax }

// Position returns the error's source position.
func (e *SyntaxError) Position() Pos { return Pos{Line: e.Line, Col: e.Col} }

func errAt(line, col int, format string, args ...interface{}) error {
	return &SyntaxError{Line: line, Col: col, Msg: fmt.Sprintf(format, args...)}
}
