package camus

import (
	"reflect"
	"strings"
	"testing"

	"camus/internal/itch"
)

const testSpec = `
header_type itch_add_order_t {
    fields {
        shares: 32;
        stock: 64;
        price: 32;
    }
}
header itch_add_order_t add_order;
@query_field(add_order.shares)
@query_field(add_order.price)
@query_field_exact(add_order.stock)
`

func TestPublicAPICompileAndEvaluate(t *testing.T) {
	sp, err := ParseSpec(testSpec)
	if err != nil {
		t.Fatal(err)
	}
	rules, err := ParseSubscriptions("stock == GOOGL && price > 50 : fwd(1)\nstock == AAPL : fwd(2,3)\n")
	if err != nil {
		t.Fatal(err)
	}
	prog, err := Compile(sp, rules, CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if prog.Stats.Rules != 2 || prog.Stats.MulticastGroups != 1 {
		t.Fatalf("stats: %+v", prog.Stats)
	}
	p4 := GenerateP4(prog)
	if !strings.Contains(p4, "control ingress") {
		t.Fatal("P4 generation broken")
	}
	entries := GenerateEntries(prog)
	if !strings.Contains(entries, "camus_leaf") {
		t.Fatal("entry generation broken")
	}
}

func TestPubSubEndToEnd(t *testing.T) {
	sp := MustParseSpec(testSpec)
	ps, err := NewPubSub(sp, PubSubConfig{})
	if err != nil {
		t.Fatal(err)
	}
	// Empty subscription set: everything drops.
	var order AddOrder
	order.SetStock("GOOGL")
	order.Price = 100
	if res := ps.ProcessOrder(&order, 0); !res.Dropped {
		t.Fatalf("no subscriptions should drop: %+v", res)
	}

	delta, err := ps.SetSubscriptions(`
stock == GOOGL : fwd(1)
stock == MSFT : fwd(2)
stock == GOOGL && shares > 1000 : fwd(3)
`)
	if err != nil {
		t.Fatal(err)
	}
	if delta.Entries.Added == 0 {
		t.Fatalf("install should add entries: %s", delta)
	}

	// Build a Mold datagram with three orders.
	var mp MoldPacket
	mp.Header.SetSession("TEST")
	mk := func(sym string, shares uint32) []byte {
		var o AddOrder
		o.SetStock(sym)
		o.Shares = shares
		return o.Bytes()
	}
	mp.Append(mk("GOOGL", 100))
	mp.Append(mk("ORCL", 100))
	mp.Append(mk("GOOGL", 2000))

	deliveries, err := ps.ProcessDatagram(mp.Bytes(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(deliveries) != 2 {
		t.Fatalf("want 2 deliveries, got %d: %+v", len(deliveries), deliveries)
	}
	if !reflect.DeepEqual(deliveries[0].Ports, []int{1}) {
		t.Fatalf("first delivery ports: %v", deliveries[0].Ports)
	}
	// Large GOOGL order matches both rules: multicast to 1 and 3.
	if !reflect.DeepEqual(deliveries[1].Ports, []int{1, 3}) || deliveries[1].Group < 0 {
		t.Fatalf("second delivery: %+v", deliveries[1])
	}

	// Incremental update: mostly reuse.
	delta, err = ps.SetSubscriptions(`
stock == GOOGL : fwd(1)
stock == MSFT : fwd(2)
stock == GOOGL && shares > 1000 : fwd(3)
stock == IBM : fwd(4)
`)
	if err != nil {
		t.Fatal(err)
	}
	if delta.Entries.Reused == 0 {
		t.Fatalf("update should reuse entries: %s", delta)
	}
	var ibm AddOrder
	ibm.SetStock("IBM")
	res := ps.ProcessOrder(&ibm, 0)
	if res.Dropped || !reflect.DeepEqual(res.Ports, []int{4}) {
		t.Fatalf("IBM after update: %+v", res)
	}
}

func TestPubSubCompileErrorLeavesOldProgram(t *testing.T) {
	sp := MustParseSpec(testSpec)
	ps, err := NewPubSub(sp, PubSubConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ps.SetSubscriptions("stock == GOOGL : fwd(1)"); err != nil {
		t.Fatal(err)
	}
	if _, err := ps.SetSubscriptions("bogusfield == 1 : fwd(1)"); err == nil {
		t.Fatal("bad subscription set should fail")
	}
	var order AddOrder
	order.SetStock("GOOGL")
	if res := ps.ProcessOrder(&order, 0); res.Dropped {
		t.Fatalf("old program should survive failed update: %+v", res)
	}
}

func TestStatefulSubscriptionViaPublicAPI(t *testing.T) {
	sp := MustParseSpec(testSpec)
	ps, err := NewPubSub(sp, PubSubConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ps.SetSubscriptions("stock == GOOGL && avg(price) > 50 : fwd(1)"); err != nil {
		t.Fatal(err)
	}
	var o itch.AddOrder
	o.SetStock("GOOGL")
	o.Price = 100
	if res := ps.ProcessOrder(&o, 0); !res.Dropped {
		t.Fatal("first message should drop (average not yet primed)")
	}
	if res := ps.ProcessOrder(&o, 1000); res.Dropped {
		t.Fatal("second message should forward (average now 100)")
	}
}
