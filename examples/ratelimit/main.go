// Rate limiting: stateful packet subscriptions as an in-network security
// primitive (the "security" and "elastic scaling" directions in the
// paper's ongoing work, §4). A per-window counter declared with
// @query_counter gates forwarding: within each tumbling window the first
// messages pass, the overflow is diverted to a scrubbing port — entirely
// in the dataplane.
package main

import (
	"fmt"
	"log"
	"time"

	"camus"
)

const specSrc = `
header_type itch_add_order_t {
    fields {
        shares: 32;
        stock: 64;
        price: 32;
    }
}
header itch_add_order_t add_order;

@query_field(add_order.shares)
@query_field(add_order.price)
@query_field_exact(add_order.stock)
@query_counter(googl_rate, 100)
`

const (
	portApp   = 1 // the trading application
	portScrub = 9 // overflow/diagnostics sink
	limit     = 5 // messages per 100µs window
)

func main() {
	sp := camus.MustParseSpec(specSrc)
	ps, err := camus.NewPubSub(sp, camus.PubSubConfig{})
	if err != nil {
		log.Fatal(err)
	}

	// Every GOOGL message bumps the window counter; messages seen while
	// the counter is under the limit go to the app, the rest are
	// diverted. The condition reads the pre-update value, so exactly
	// `limit` messages pass per window.
	subs := fmt.Sprintf(`
stock == GOOGL : googl_rate <- count()
stock == GOOGL && googl_rate < %d : fwd(%d)
stock == GOOGL && googl_rate >= %d : fwd(%d)
`, limit, portApp, limit, portScrub)
	if _, err := ps.SetSubscriptions(subs); err != nil {
		log.Fatal(err)
	}

	send := func(now time.Duration) []int {
		var o camus.AddOrder
		o.SetStock("GOOGL")
		res := ps.ProcessOrder(&o, now)
		if res.Dropped {
			return nil
		}
		return res.Ports
	}

	fmt.Println("=== burst of 12 messages inside one 100µs window ===")
	app, scrub := 0, 0
	now := time.Duration(0)
	for i := 0; i < 12; i++ {
		ports := send(now)
		now += time.Microsecond
		for _, p := range ports {
			switch p {
			case portApp:
				app++
			case portScrub:
				scrub++
			}
		}
		fmt.Printf("  msg %2d -> ports %v\n", i+1, ports)
	}
	fmt.Printf("window total: %d to app, %d diverted\n", app, scrub)
	if app != limit || scrub != 12-limit {
		log.Fatalf("rate limit broken: app=%d scrub=%d", app, scrub)
	}

	// The tumbling window resets: the next burst passes again.
	now += 200 * time.Microsecond
	fmt.Println("\n=== next window ===")
	ports := send(now)
	fmt.Printf("  first message -> ports %v\n", ports)
	if len(ports) != 1 || ports[0] != portApp {
		log.Fatalf("window did not reset: %v", ports)
	}
	fmt.Println("counter reset; traffic flows to the app again")
}
