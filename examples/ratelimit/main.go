// Rate limiting: stateful packet subscriptions as an in-network security
// primitive (the "security" and "elastic scaling" directions in the
// paper's ongoing work, §4). A keyed window counter declared with
// @query_counter gates forwarding per flow: `rate[add_order.stock]`
// addresses one register cell per stock symbol in the switch's keyed
// banks, so every flow has its own tumbling-window budget — no per-flow
// rule explosion, one rule set covers the whole keyspace. Within each
// window the first messages of a flow pass and its overflow diverts to a
// scrubbing port, entirely in the dataplane.
package main

import (
	"fmt"
	"log"
	"time"

	"camus"
)

const specSrc = `
header_type itch_add_order_t {
    fields {
        shares: 32;
        stock: 64;
        price: 32;
    }
}
header itch_add_order_t add_order;

@query_field(add_order.shares)
@query_field(add_order.price)
@query_field_exact(add_order.stock)
@query_counter(rate, 100)
`

const (
	portApp   = 1 // the trading application
	portScrub = 9 // overflow/diagnostics sink
	limit     = 5 // messages per stock per 100µs window
)

func main() {
	sp := camus.MustParseSpec(specSrc)
	ps, err := camus.NewPubSub(sp, camus.PubSubConfig{})
	if err != nil {
		log.Fatal(err)
	}

	// Every message bumps its own stock's window counter (the counter is
	// keyed by the stock field, not one global cell). The condition
	// reads the pre-update value, so exactly `limit` messages per stock
	// pass per window — a burst in GOOGL cannot consume MSFT's budget.
	subs := fmt.Sprintf(`
true : rate[add_order.stock] <- count()
rate[add_order.stock] < %d : fwd(%d)
rate[add_order.stock] >= %d : fwd(%d)
`, limit, portApp, limit, portScrub)
	if _, err := ps.SetSubscriptions(subs); err != nil {
		log.Fatal(err)
	}

	send := func(stock string, now time.Duration) []int {
		var o camus.AddOrder
		o.SetStock(stock)
		res := ps.ProcessOrder(&o, now)
		if res.Dropped {
			return nil
		}
		return res.Ports
	}

	fmt.Println("=== interleaved burst inside one 100µs window: 12x GOOGL, 4x MSFT ===")
	app := map[string]int{}
	scrub := map[string]int{}
	now := time.Duration(0)
	deliver := func(stock string, i int) {
		ports := send(stock, now)
		now += time.Microsecond
		for _, p := range ports {
			switch p {
			case portApp:
				app[stock]++
			case portScrub:
				scrub[stock]++
			}
		}
		fmt.Printf("  %-5s msg %2d -> ports %v\n", stock, i, ports)
	}
	for i := 0; i < 12; i++ {
		deliver("GOOGL", i+1)
		if i%3 == 0 {
			deliver("MSFT", i/3+1)
		}
	}
	fmt.Printf("window totals: GOOGL %d to app / %d diverted, MSFT %d to app / %d diverted\n",
		app["GOOGL"], scrub["GOOGL"], app["MSFT"], scrub["MSFT"])
	if app["GOOGL"] != limit || scrub["GOOGL"] != 12-limit {
		log.Fatalf("GOOGL rate limit broken: app=%d scrub=%d", app["GOOGL"], scrub["GOOGL"])
	}
	// MSFT sent only 4 — under its own limit, untouched by GOOGL's
	// overflow. That independence is the point of keying.
	if app["MSFT"] != 4 || scrub["MSFT"] != 0 {
		log.Fatalf("MSFT budget polluted by GOOGL burst: app=%d scrub=%d", app["MSFT"], scrub["MSFT"])
	}

	// The tumbling windows reset per key: the next burst passes again.
	now += 200 * time.Microsecond
	fmt.Println("\n=== next window ===")
	ports := send("GOOGL", now)
	fmt.Printf("  first GOOGL message -> ports %v\n", ports)
	if len(ports) != 1 || ports[0] != portApp {
		log.Fatalf("window did not reset: %v", ports)
	}
	fmt.Println("counters reset; traffic flows to the app again")
}
