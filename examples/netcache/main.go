// In-network caching: the NetCache-style use case the paper's conclusion
// points at ("packet subscriptions would also be a useful abstraction for
// in-network caching, which routes based on content identifier"). Requests
// for hot keys are steered to the rack's cache node; everything else goes
// to the backing store partition that owns the key range.
package main

import (
	"context"
	"fmt"
	"log"

	"camus"
)

const specSrc = `
header_type kv_req_t {
    fields {
        op: 8;
        key: 64;
    }
}
header kv_req_t kv;

@query_field_exact(kv.op)
@query_field(kv.key)
`

const (
	opGet = 1
	opPut = 2

	portCache  = 1
	portStoreA = 2 // keys [0, 2^63)
	portStoreB = 3 // keys [2^63, 2^64)
	halfSpace  = uint64(1) << 63
)

func main() {
	sp := camus.MustParseSpec(specSrc)

	// The controller tracks the hot set (as NetCache's controller does)
	// and refreshes the switch rules as popularity shifts.
	hot := []uint64{0xCAFE, 0xBEEF, 0xF00D}
	prog, err := camus.CompileSource(sp, rulesFor(hot), camus.CompileOptions{})
	if err != nil {
		log.Fatal(err)
	}
	sw, err := camus.NewSwitch(prog, camus.DefaultSwitchConfig())
	if err != nil {
		log.Fatal(err)
	}
	ctl := camus.NewController(sw)

	opIdx, err := prog.FieldIndex("kv.op")
	if err != nil {
		log.Fatal(err)
	}
	keyIdx, err := prog.FieldIndex("kv.key")
	if err != nil {
		log.Fatal(err)
	}
	route := func(op, key uint64) []int {
		vals := make([]uint64, len(prog.Fields))
		vals[opIdx], vals[keyIdx] = op, key
		res := sw.Process(vals, 0)
		if res.Dropped {
			return nil
		}
		return res.Ports
	}

	fmt.Println("=== hot set {CAFE, BEEF, F00D} cached in-network ===")
	show := func() {
		for _, probe := range []struct {
			name string
			op   uint64
			key  uint64
		}{
			{"GET hot CAFE", opGet, 0xCAFE},
			{"GET cold 42", opGet, 42},
			{"GET cold high", opGet, halfSpace + 7},
			{"PUT hot CAFE", opPut, 0xCAFE}, // writes bypass the cache
		} {
			fmt.Printf("  %-14s -> ports %v\n", probe.name, route(probe.op, probe.key))
		}
	}
	show()

	// PUTs to hot keys must also invalidate the cache: they multicast to
	// the owning store and the cache node.
	if got := route(opPut, 0xCAFE); len(got) != 2 {
		log.Fatalf("hot PUT should reach store and cache, got %v", got)
	}

	// The hot set rotates; only the delta hits the switch.
	hot = []uint64{0xCAFE, 0xD00D}
	newProg, err := camus.CompileSource(sp, rulesFor(hot), camus.CompileOptions{})
	if err != nil {
		log.Fatal(err)
	}
	delta, err := ctl.Update(context.Background(), newProg)
	if err != nil {
		log.Fatal(err)
	}
	prog = newProg
	fmt.Printf("\n=== hot set rotated to {CAFE, D00D} (update: %s) ===\n", delta)
	if got := route(opGet, 0xBEEF); len(got) != 1 || got[0] != portStoreA {
		log.Fatalf("evicted key should go to its store, got %v", got)
	}
	if got := route(opGet, 0xD00D); len(got) != 1 || got[0] != portCache {
		log.Fatalf("new hot key should hit the cache, got %v", got)
	}
	show()
}

// rulesFor compiles the routing policy: hot GETs to the cache only, hot
// PUTs to owner+cache (write-through invalidation), everything else by
// key-range ownership. Hot GETs are carved out of the ownership rules with
// a negated disjunction — the kind of predicate address-based routing
// cannot express.
func rulesFor(hot []uint64) string {
	hotDisj := ""
	for i, k := range hot {
		if i > 0 {
			hotDisj += " || "
		}
		hotDisj += fmt.Sprintf("kv.key == %d", k)
	}
	src := ""
	for _, k := range hot {
		src += fmt.Sprintf("kv.op == %d && kv.key == %d : fwd(%d)\n", opGet, k, portCache)
		// Writes invalidate: the cache hears about them too.
		src += fmt.Sprintf("kv.op == %d && kv.key == %d : fwd(%d)\n", opPut, k, portCache)
	}
	notHotGet := fmt.Sprintf("!(kv.op == %d && (%s))", opGet, hotDisj)
	src += fmt.Sprintf("kv.key < %d && %s : fwd(%d)\n", halfSpace, notHotGet, portStoreA)
	src += fmt.Sprintf("kv.key >= %d && %s : fwd(%d)\n", halfSpace, notHotGet, portStoreB)
	return src
}
