// ITCH pub/sub: the paper's case study (§4, Fig. 6). A publisher streams
// a market-data feed as MoldUDP64 datagrams; the Camus switch splits it so
// each subscriber receives only the stocks (and price/size bands) it asked
// for. The example prints per-subscriber delivery counts and the host-load
// reduction against broadcasting the whole feed.
package main

import (
	"fmt"
	"log"

	"camus"
	"camus/internal/workload"
)

func main() {
	sp := camus.MustParseSpec(workload.ITCHSpecSource)

	ps, err := camus.NewPubSub(sp, camus.PubSubConfig{})
	if err != nil {
		log.Fatal(err)
	}

	// Three trading strategies, each on its own switch port (the feed
	// carries GOOGL plus synthetic symbols S000..S099):
	//   port 1: everything about GOOGL
	//   port 2: S001 block trades (>= 500 shares)
	//   port 3: small S002 orders (odd lots under 300 shares)
	subs := `
stock == GOOGL : fwd(1)
stock == S001 && shares >= 500 : fwd(2)
stock == S002 && shares < 300 : fwd(3)
`
	delta, err := ps.SetSubscriptions(subs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("installed subscriptions (%s)\n\n", delta)

	// Publish a synthetic market feed as Mold datagrams.
	feedCfg := workload.SyntheticFeedConfig()
	feedCfg.Duration /= 4 // keep the example quick
	feed := workload.GenerateFeed(feedCfg)

	perPort := map[int]int{}
	total, forwarded := 0, 0
	var seq uint64 = 1
	for _, pkt := range feed {
		wire := workload.WirePacket(pkt, "EXAMPLE", seq)
		seq += uint64(len(pkt.Orders))
		total += len(pkt.Orders)
		deliveries, err := ps.ProcessDatagram(wire, pkt.At)
		if err != nil {
			log.Fatal(err)
		}
		for _, d := range deliveries {
			forwarded++
			for _, port := range d.Ports {
				perPort[port]++
			}
		}
	}

	fmt.Printf("feed: %d messages in %d datagrams\n", total, len(feed))
	fmt.Printf("forwarded by switch: %d messages (%.2f%% of feed)\n",
		forwarded, 100*float64(forwarded)/float64(total))
	for port := 1; port <= 3; port++ {
		fmt.Printf("  port %d: %6d messages\n", port, perPort[port])
	}
	fmt.Printf("\nbaseline (broadcast) would deliver %d messages to every server;\n", total)
	fmt.Printf("switch filtering cuts subscriber load by %.0fx\n",
		float64(total)/float64(maxInt(forwarded, 1)))

	st := ps.Program().Stats
	fmt.Printf("\nswitch footprint: %d table entries (%d SRAM, %d TCAM), %d multicast groups\n",
		st.TableEntries, st.SRAMEntries, st.TCAMEntries, st.MulticastGroups)
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
