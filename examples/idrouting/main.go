// Identifier-based routing: the ILA-style use case from the paper's
// introduction. Containers are addressed by a flat 64-bit identifier
// carried in the packet; the switch routes on the identifier instead of
// the (ephemeral) locator address, so migrating a container is a one-rule
// control-plane update rather than a renumbering event.
package main

import (
	"context"
	"fmt"
	"log"

	"camus"
)

const specSrc = `
header_type ila_t {
    fields {
        identifier: 64;
        locator: 32;
    }
}
header ila_t ila;

@query_field_exact(ila.identifier)
`

func main() {
	sp := camus.MustParseSpec(specSrc)

	// Ten services, each identified by a flat ID, initially spread over
	// four top-of-rack ports.
	mk := func(assign map[uint64]int) string {
		src := ""
		for id := uint64(1); id <= 10; id++ {
			src += fmt.Sprintf("ila.identifier == %d : fwd(%d)\n", 0x1000+id, assign[id])
		}
		return src
	}
	assign := map[uint64]int{}
	for id := uint64(1); id <= 10; id++ {
		assign[id] = 1 + int(id)%4
	}

	prog, err := camus.CompileSource(sp, mk(assign), camus.CompileOptions{})
	if err != nil {
		log.Fatal(err)
	}
	sw, err := camus.NewSwitch(prog, camus.DefaultSwitchConfig())
	if err != nil {
		log.Fatal(err)
	}
	ctl := camus.NewController(sw)

	idIdx, err := prog.FieldIndex("ila.identifier")
	if err != nil {
		log.Fatal(err)
	}
	route := func(id uint64) int {
		vals := make([]uint64, len(prog.Fields))
		vals[idIdx] = 0x1000 + id
		res := sw.Process(vals, 0)
		if res.Dropped {
			return 0
		}
		return res.Ports[0]
	}

	fmt.Println("=== initial placement ===")
	for id := uint64(1); id <= 10; id++ {
		fmt.Printf("  service %2d -> port %d\n", id, route(id))
	}

	// Service 7 migrates from its rack to port 1. Only its rule changes;
	// the control plane pushes a two-write delta.
	assign[7] = 1
	newProg, err := camus.CompileSource(sp, mk(assign), camus.CompileOptions{})
	if err != nil {
		log.Fatal(err)
	}
	delta, err := ctl.Update(context.Background(), newProg)
	if err != nil {
		log.Fatal(err)
	}
	prog = newProg
	fmt.Printf("\n=== service 7 migrated (update: %s) ===\n", delta)
	if got := route(7); got != 1 {
		log.Fatalf("service 7 routed to port %d, want 1", got)
	}
	for id := uint64(1); id <= 10; id++ {
		fmt.Printf("  service %2d -> port %d\n", id, route(id))
	}

	// Unknown identifiers drop (or would fall through to IP routing in a
	// brownfield deployment — packet subscriptions compose with other
	// pipelines).
	if got := route(999); got != 0 {
		log.Fatal("unknown identifier should not match")
	}
	fmt.Println("\nunknown identifiers fall through to the default route")
}
