// Load balancer: packet subscriptions as an in-network L4 load balancer
// (the Maglev/Katran use case from the paper's introduction). Traffic to a
// virtual IP is spread over backends by source-port range — arbitrary
// range predicates, not just prefixes — and reconfiguring on a backend
// failure is an incremental rule update, not a middlebox restart.
package main

import (
	"context"
	"fmt"
	"log"

	"camus"
)

const specSrc = `
header_type ipv4_t {
    fields {
        src: 32;
        dst: 32;
    }
}
header_type udp_t {
    fields {
        sport: 16;
        dport: 16;
    }
}
header ipv4_t ip;
header udp_t udp;

@query_field_exact(ip.dst)
@query_field(udp.sport)
@query_field_exact(udp.dport)
`

func main() {
	sp := camus.MustParseSpec(specSrc)

	// VIP 10.0.0.100:80 spread over 4 backends by source-port quartile.
	subsHealthy := `
ip.dst == 10.0.0.100 && udp.dport == 80 && udp.sport < 16384 : fwd(1)
ip.dst == 10.0.0.100 && udp.dport == 80 && udp.sport >= 16384 && udp.sport < 32768 : fwd(2)
ip.dst == 10.0.0.100 && udp.dport == 80 && udp.sport >= 32768 && udp.sport < 49152 : fwd(3)
ip.dst == 10.0.0.100 && udp.dport == 80 && udp.sport >= 49152 : fwd(4)
`
	prog, err := camus.CompileSource(sp, subsHealthy, camus.CompileOptions{})
	if err != nil {
		log.Fatal(err)
	}
	sw, err := camus.NewSwitch(prog, camus.DefaultSwitchConfig())
	if err != nil {
		log.Fatal(err)
	}
	ctl := camus.NewController(sw)

	fieldIdx := func(name string) int {
		i, err := prog.FieldIndex(name)
		if err != nil {
			log.Fatal(err)
		}
		return i
	}
	dstIdx, sportIdx, dportIdx := fieldIdx("ip.dst"), fieldIdx("udp.sport"), fieldIdx("udp.dport")
	vip := uint64(10)<<24 | 100 // 10.0.0.100

	process := func(sport uint64) int {
		vals := make([]uint64, len(prog.Fields))
		vals[dstIdx], vals[sportIdx], vals[dportIdx] = vip, sport, 80
		res := sw.Process(vals, 0)
		if res.Dropped {
			return 0
		}
		return res.Ports[0]
	}

	fmt.Println("=== 4 healthy backends ===")
	counts := map[int]int{}
	for sport := uint64(0); sport < 65536; sport += 97 {
		counts[process(sport)]++
	}
	for b := 1; b <= 4; b++ {
		fmt.Printf("  backend %d: %4d flows\n", b, counts[b])
	}

	// Backend 3 fails: recompile with its range folded into backend 4 and
	// push only the delta.
	subsDegraded := `
ip.dst == 10.0.0.100 && udp.dport == 80 && udp.sport < 16384 : fwd(1)
ip.dst == 10.0.0.100 && udp.dport == 80 && udp.sport >= 16384 && udp.sport < 32768 : fwd(2)
ip.dst == 10.0.0.100 && udp.dport == 80 && udp.sport >= 32768 : fwd(4)
`
	newProg, err := camus.CompileSource(sp, subsDegraded, camus.CompileOptions{})
	if err != nil {
		log.Fatal(err)
	}
	delta, err := ctl.Update(context.Background(), newProg)
	if err != nil {
		log.Fatal(err)
	}
	prog = newProg
	fmt.Printf("\n=== backend 3 drained (update: %s) ===\n", delta)
	counts = map[int]int{}
	for sport := uint64(0); sport < 65536; sport += 97 {
		counts[process(sport)]++
	}
	for b := 1; b <= 4; b++ {
		fmt.Printf("  backend %d: %4d flows\n", b, counts[b])
	}
	if counts[3] != 0 {
		log.Fatal("backend 3 still receiving traffic after drain")
	}

	// Traffic to another address is untouched by the VIP rules.
	vals := make([]uint64, len(prog.Fields))
	vals[dstIdx] = uint64(10)<<24 | 99
	vals[dportIdx] = 80
	if res := sw.Process(vals, 0); !res.Dropped {
		log.Fatal("non-VIP traffic should not match")
	}
	fmt.Println("\nnon-VIP traffic falls through to the default pipeline (drop here)")
}
