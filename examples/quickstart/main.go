// Quickstart: compile three packet subscriptions against the paper's ITCH
// message format, inspect the generated tables (the Figure 3/4 example),
// and run messages through the simulated switch.
package main

import (
	"fmt"
	"log"

	"camus"
)

const specSrc = `
header_type itch_add_order_t {
    fields {
        shares: 32;
        stock: 64;
        price: 32;
    }
}
header itch_add_order_t add_order;

@query_field(add_order.shares)
@query_field(add_order.price)
@query_field_exact(add_order.stock)
`

const rulesSrc = `
shares < 60 && stock == AAPL : fwd(3)
shares < 60 && stock == AAPL : fwd(1); fwd(2)
shares > 100 && stock == MSFT : fwd(1)
`

func main() {
	sp, err := camus.ParseSpec(specSrc)
	if err != nil {
		log.Fatal(err)
	}
	prog, err := camus.CompileSource(sp, rulesSrc, camus.CompileOptions{})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("=== compiled tables (cf. Figure 4) ===")
	fmt.Print(prog.Dump())
	fmt.Println("\n=== statistics ===")
	fmt.Println(prog.Stats)

	sw, err := camus.NewSwitch(prog, camus.DefaultSwitchConfig())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("\n=== forwarding decisions ===")
	ps, err := camus.NewPubSub(sp, camus.PubSubConfig{})
	if err != nil {
		log.Fatal(err)
	}
	if _, err := ps.SetSubscriptions(rulesSrc); err != nil {
		log.Fatal(err)
	}
	for _, m := range []struct {
		sym    string
		shares uint32
	}{
		{"AAPL", 59},  // matches rules 1+2: multicast fwd(1,2,3)
		{"MSFT", 150}, // matches rule 3: fwd(1)
		{"AAPL", 80},  // matches nothing: drop
	} {
		var o camus.AddOrder
		o.SetStock(m.sym)
		o.Shares = m.shares
		res := ps.ProcessOrder(&o, 0)
		if res.Dropped {
			fmt.Printf("%-6s shares=%-4d -> drop\n", m.sym, m.shares)
		} else {
			fmt.Printf("%-6s shares=%-4d -> ports %v (group %d)\n", m.sym, m.shares, res.Ports, res.Group)
		}
	}

	fmt.Printf("\nswitch model: %d ports, %.2f Tb/s aggregate, %v pipeline latency\n",
		sw.Config().Ports, sw.Config().BandwidthTbps(), sw.Latency())
}
