// Benchmarks regenerating the paper's evaluation (§4), one per figure.
// Custom metrics carry the figure's y-axis (table entries, multicast
// groups, latency percentiles) alongside the usual ns/op. The camus-bench
// command prints the same series as human-readable tables.
package camus

import (
	"fmt"
	"testing"
	"time"

	"camus/internal/compiler"
	"camus/internal/experiments"
	"camus/internal/itch"
	"camus/internal/lang"
	"camus/internal/netsim"
	"camus/internal/pipeline"
	"camus/internal/telemetry"
	"camus/internal/workload"
)

// BenchmarkFig5aEntriesVsSubscriptions regenerates Figure 5a: switch table
// entries as the number of Siena-style subscriptions grows.
func BenchmarkFig5aEntriesVsSubscriptions(b *testing.B) {
	cfg := workload.DefaultSienaConfig()
	sp := workload.SienaSpec(cfg)
	for _, n := range experiments.Fig5aSweep {
		b.Run(fmt.Sprintf("subs-%d", n), func(b *testing.B) {
			cfg.Subscriptions = n
			rules := workload.Siena(cfg)
			var entries int
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				prog, err := compiler.Compile(sp, rules, compiler.Options{})
				if err != nil {
					b.Fatal(err)
				}
				entries = prog.Stats.TableEntries
			}
			b.ReportMetric(float64(entries), "entries")
		})
	}
}

// BenchmarkFig5bEntriesVsPredicates regenerates Figure 5b: entries as
// subscriptions get more selective (longer conjunctions ⇒ fewer entries).
func BenchmarkFig5bEntriesVsPredicates(b *testing.B) {
	cfg := workload.DefaultSienaConfig()
	cfg.Subscriptions = 30
	sp := workload.SienaSpec(cfg)
	for _, k := range experiments.Fig5bSweep {
		b.Run(fmt.Sprintf("preds-%d", k), func(b *testing.B) {
			cfg.Predicates = k
			rules := workload.Siena(cfg)
			var entries int
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				prog, err := compiler.Compile(sp, rules, compiler.Options{})
				if err != nil {
					b.Fatal(err)
				}
				entries = prog.Stats.TableEntries
			}
			b.ReportMetric(float64(entries), "entries")
		})
	}
}

// BenchmarkFig5cCompileTime regenerates Figure 5c: compile time for the
// ITCH workload (ns/op is the figure's y-axis; entries and multicast
// groups are the §4 headline numbers — the paper reports 21,401 entries
// and 198 groups at 100K subscriptions).
func BenchmarkFig5cCompileTime(b *testing.B) {
	sp := workload.ITCHSpec()
	cfg := workload.DefaultITCHSubsConfig()
	for _, n := range []int{1000, 10000, 100000} {
		b.Run(fmt.Sprintf("subs-%d", n), func(b *testing.B) {
			cfg.Subscriptions = n
			rules := workload.ITCHSubscriptions(cfg)
			var st compiler.Stats
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				prog, err := compiler.Compile(sp, rules, compiler.Options{})
				if err != nil {
					b.Fatal(err)
				}
				st = prog.Stats
			}
			b.ReportMetric(float64(st.TableEntries), "entries")
			b.ReportMetric(float64(st.MulticastGroups), "groups")
		})
	}
}

func reportFig7(b *testing.B, r *experiments.Fig7Result) {
	b.ReportMetric(float64(r.Camus.Percentile(99).Microseconds()), "camus-p99-µs")
	b.ReportMetric(float64(r.Baseline.Percentile(99).Microseconds()), "baseline-p99-µs")
	b.ReportMetric(float64(r.Camus.Max().Microseconds()), "camus-max-µs")
	b.ReportMetric(float64(r.Baseline.Max().Microseconds()), "baseline-max-µs")
	b.ReportMetric(r.Camus.FractionBelow(20*time.Microsecond)*100, "camus-cdf20µs-%")
	b.ReportMetric(r.Baseline.FractionBelow(20*time.Microsecond)*100, "baseline-cdf20µs-%")
}

// BenchmarkFig7aNasdaqTrace regenerates Figure 7a: end-to-end latency of
// GOOGL messages on the Nasdaq-trace stand-in (0.5% match), switch
// filtering vs software baseline.
func BenchmarkFig7aNasdaqTrace(b *testing.B) {
	var r *experiments.Fig7Result
	var err error
	for i := 0; i < b.N; i++ {
		r, err = experiments.Fig7a()
		if err != nil {
			b.Fatal(err)
		}
	}
	reportFig7(b, r)
}

// BenchmarkFig7bSyntheticTrace regenerates Figure 7b: the synthetic feed
// (5% match).
func BenchmarkFig7bSyntheticTrace(b *testing.B) {
	var r *experiments.Fig7Result
	var err error
	for i := 0; i < b.N; i++ {
		r, err = experiments.Fig7b()
		if err != nil {
			b.Fatal(err)
		}
	}
	reportFig7(b, r)
}

// BenchmarkLineRatePipeline backs the §4 line-rate claim: per-message
// switch work must not grow with the installed subscription count (the
// fixed-length pipeline property behind "full switch bandwidth of
// 6.5Tbps").
func BenchmarkLineRatePipeline(b *testing.B) {
	benchLineRate(b, false)
}

// BenchmarkLineRatePipelineTelemetry is the same workload with the full
// telemetry layer enabled (per-table hit/miss counters, register-read and
// packet counters). The acceptance bar is <=5% over the uninstrumented
// run — the per-stage instruments are single atomic adds, matching how a
// real ASIC's counters ride along with the match stages.
func BenchmarkLineRatePipelineTelemetry(b *testing.B) {
	benchLineRate(b, true)
}

func benchLineRate(b *testing.B, instrumented bool) {
	sp := workload.ITCHSpec()
	cfg := workload.DefaultITCHSubsConfig()
	feed := workload.GenerateFeed(workload.SyntheticFeedConfig())
	var orders []itch.AddOrder
	for _, p := range feed {
		orders = append(orders, p.Orders...)
	}
	for _, n := range []int{1, 1000, 10000, 100000} {
		b.Run(fmt.Sprintf("rules-%d", n), func(b *testing.B) {
			cfg.Subscriptions = n
			prog, err := compiler.Compile(sp, workload.ITCHSubscriptions(cfg), compiler.Options{})
			if err != nil {
				b.Fatal(err)
			}
			pcfg := pipeline.DefaultConfig()
			if instrumented {
				pcfg.Telemetry = telemetry.NewRegistry()
			}
			sw, err := pipeline.New(prog, pcfg)
			if err != nil {
				b.Fatal(err)
			}
			ex, err := itch.NewExtractor(prog)
			if err != nil {
				b.Fatal(err)
			}
			var vals []uint64
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				o := &orders[i%len(orders)]
				vals = ex.Values(o, vals)
				sw.Process(vals, 0)
			}
		})
	}
}

// BenchmarkAblationCompiler compares the resource optimizations of §3.2
// (exact-match lowering, domain compression) and the naive single-table
// encoding the paper rejects, on a 20K-subscription workload.
func BenchmarkAblationCompiler(b *testing.B) {
	sp := workload.ITCHSpec()
	cfg := workload.DefaultITCHSubsConfig()
	cfg.Subscriptions = 20000
	rules := workload.ITCHSubscriptions(cfg)
	for _, v := range []struct {
		name string
		opts compiler.Options
	}{
		{"full", compiler.Options{}},
		{"no-compression", compiler.Options{DisableCompression: true}},
		{"all-tcam", compiler.Options{ForceRangeTables: true, DisableCompression: true}},
	} {
		b.Run(v.name, func(b *testing.B) {
			var st compiler.Stats
			var naive uint64
			for i := 0; i < b.N; i++ {
				prog, err := compiler.Compile(sp, rules, v.opts)
				if err != nil {
					b.Fatal(err)
				}
				st = prog.Stats
				naive = compiler.NaiveTCAMCost(prog)
			}
			b.ReportMetric(float64(st.TableEntries), "entries")
			b.ReportMetric(float64(st.SRAMEntries), "sram")
			b.ReportMetric(float64(st.TCAMEntries), "tcam")
			b.ReportMetric(float64(naive), "naive-tcam")
		})
	}
}

// BenchmarkAblationFieldOrder compares BDD variable orders (§3.2: order
// choice is NP-hard; the heuristic tests equality discriminators first).
func BenchmarkAblationFieldOrder(b *testing.B) {
	cfg := workload.DefaultITCHSubsConfig()
	cfg.Subscriptions = 5000
	rules := workload.ITCHSubscriptions(cfg)
	for _, v := range []struct {
		name  string
		order []string
	}{
		{"heuristic", nil},
		{"price-first", []string{"price", "stock", "shares"}},
	} {
		b.Run(v.name, func(b *testing.B) {
			var nodes int
			for i := 0; i < b.N; i++ {
				sp := workload.ITCHSpec()
				if v.order == nil {
					if _, err := compiler.ApplySuggestedOrder(sp, rules); err != nil {
						b.Fatal(err)
					}
				} else if err := sp.SetFieldOrder(v.order...); err != nil {
					b.Fatal(err)
				}
				prog, err := compiler.Compile(sp, rules, compiler.Options{})
				if err != nil {
					b.Fatal(err)
				}
				nodes = prog.Stats.BDDNodes
			}
			b.ReportMetric(float64(nodes), "bdd-nodes")
		})
	}
}

// BenchmarkFanoutFeedSplitting quantifies the paper's motivating scenario
// (§4): N subscriber servers, switch filtering vs broadcasting the feed.
func BenchmarkFanoutFeedSplitting(b *testing.B) {
	var pts []experiments.FanoutPoint
	var err error
	for i := 0; i < b.N; i++ {
		pts, err = experiments.Fanout(16)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, p := range pts {
		switch p.Mode {
		case "camus":
			b.ReportMetric(p.FabricMBytes, "camus-egress-MB")
		case "broadcast":
			b.ReportMetric(p.FabricMBytes, "broadcast-egress-MB")
		}
	}
}

// BenchmarkEndToEndSimulator measures the discrete-event testbed itself
// (events per second), to document the substrate's capacity.
func BenchmarkEndToEndSimulator(b *testing.B) {
	feedCfg := workload.NasdaqTraceConfig()
	feedCfg.Duration = 20 * time.Millisecond
	feed := workload.GenerateFeed(feedCfg)
	for i := 0; i < b.N; i++ {
		_, err := netsim.RunExperiment(netsim.ExperimentConfig{
			Feed: feed, TargetSymbol: "GOOGL", Mode: netsim.Baseline,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// Micro-benchmarks for the building blocks.

// BenchmarkBDDBuild measures BDD construction alone on 1K conjunctions.
func BenchmarkBDDBuild(b *testing.B) {
	sp := workload.ITCHSpec()
	cfg := workload.DefaultITCHSubsConfig()
	cfg.Subscriptions = 1000
	rules := workload.ITCHSubscriptions(cfg)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := compiler.Compile(sp, rules, compiler.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCompileParallel measures the worker-pool speedup of the dynamic
// compiler on the Fig. 5c 100K-subscription ITCH workload: workers-1 is
// the fully serial baseline, workers-max uses every core. The outputs are
// bit-identical (see TestParallelCompileMatchesSerialITCH); only the
// wall-clock should differ.
func BenchmarkCompileParallel(b *testing.B) {
	sp := workload.ITCHSpec()
	cfg := workload.DefaultITCHSubsConfig()
	cfg.Subscriptions = 100000
	rules := workload.ITCHSubscriptions(cfg)
	for _, v := range []struct {
		name    string
		workers int
	}{
		{"workers-1", 1},
		{"workers-max", 0}, // 0 = GOMAXPROCS
	} {
		b.Run(v.name, func(b *testing.B) {
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := compiler.Compile(sp, rules, compiler.Options{Workers: v.workers}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkChurnIncremental measures a 1% subscription churn event
// (remove 1%, add 1%, recompile) two ways: a full from-scratch compile of
// the new rule set versus an incremental Session recompile that reuses
// memoized sub-BDDs and persistent payload IDs.
func BenchmarkChurnIncremental(b *testing.B) {
	sp := workload.ITCHSpec()
	for _, n := range []int{10000, 100000} {
		cfg := workload.DefaultITCHSubsConfig()
		cfg.Subscriptions = n
		rules := workload.ITCHSubscriptions(cfg)
		freshCfg := cfg
		freshCfg.Seed = 7777
		fresh := workload.ITCHSubscriptions(freshCfg)
		churn := n / 100

		b.Run(fmt.Sprintf("full/subs-%d", n), func(b *testing.B) {
			// The post-churn rule set, compiled from scratch each time.
			after := append(append([]lang.Rule(nil), rules[churn:]...), fresh[:churn]...)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := compiler.Compile(sp, after, compiler.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("incremental/subs-%d", n), func(b *testing.B) {
			sess := compiler.NewSession(sp, compiler.Options{})
			handles, err := sess.AddRules(rules)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := sess.Recompile(); err != nil {
				b.Fatal(err)
			}
			next := 0
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := sess.RemoveRules(handles[:churn]...); err != nil {
					b.Fatal(err)
				}
				add := fresh[next*churn%len(fresh) : next*churn%len(fresh)+churn]
				next++
				nh, err := sess.AddRules(add)
				if err != nil {
					b.Fatal(err)
				}
				handles = append(handles[churn:], nh...)
				if _, err := sess.Recompile(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkITCHDecode measures the zero-alloc Mold/ITCH decode path.
func BenchmarkITCHDecode(b *testing.B) {
	feed := workload.GenerateFeed(workload.SyntheticFeedConfig())
	wire := workload.WirePacket(feed[0], "BENCH", 1)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		n := 0
		if err := itch.ForEachAddOrder(wire, func(*itch.AddOrder) { n++ }); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSubscriptionParse measures the language front end.
func BenchmarkSubscriptionParse(b *testing.B) {
	src := "stock == GOOGL && price > 50 && shares < 1000 : fwd(1,2,3)\n"
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ParseSubscriptions(src); err != nil {
			b.Fatal(err)
		}
	}
}
