package camus

import (
	"context"
	"net"
	"testing"
	"time"

	"camus/internal/itch"
)

// TestUDPSwitchPublicAPI drives the whole system over real loopback UDP
// through the public API: compile subscriptions, run the dataplane, send
// a Mold datagram, receive the filtered copy.
func TestUDPSwitchPublicAPI(t *testing.T) {
	sub, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()

	sw, err := ListenUDP(UDPSwitchConfig{
		Spec:          MustParseSpec(testSpec),
		Ports:         map[int]string{1: sub.LocalAddr().String()},
		Subscriptions: "stock == GOOGL && shares > 100 : fwd(1)",
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go sw.Run(ctx)

	pub, err := net.DialUDP("udp", nil, sw.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer pub.Close()

	var mp MoldPacket
	mp.Header.SetSession("PUBAPI")
	var hit, miss AddOrder
	hit.SetStock("GOOGL")
	hit.Shares = 500
	miss.SetStock("GOOGL")
	miss.Shares = 50
	mp.Append(hit.Bytes())
	mp.Append(miss.Bytes())
	if _, err := pub.Write(mp.Bytes()); err != nil {
		t.Fatal(err)
	}

	sub.SetReadDeadline(time.Now().Add(2 * time.Second))
	buf := make([]byte, 64<<10)
	n, _, err := sub.ReadFromUDP(buf)
	if err != nil {
		t.Fatal(err)
	}
	var got MoldPacket
	if err := got.Decode(buf[:n]); err != nil {
		t.Fatal(err)
	}
	if len(got.Messages) != 1 {
		t.Fatalf("got %d messages, want 1 (shares filter)", len(got.Messages))
	}
	var o itch.AddOrder
	if err := o.DecodeFromBytes(got.Messages[0]); err != nil {
		t.Fatal(err)
	}
	if o.Shares != 500 {
		t.Fatalf("wrong message forwarded: shares=%d", o.Shares)
	}
	if sw.Metric("camus_dataplane_matched_total") != 1 {
		t.Fatalf("matched = %d", sw.Metric("camus_dataplane_matched_total"))
	}
}
