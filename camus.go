// Package camus is a Go implementation of packet subscriptions for
// programmable ASICs — the system described in "Packet Subscriptions for
// Programmable ASICs" (Jepsen et al., HotNets 2018).
//
// A packet subscription is a stateful predicate over packet contents that
// determines a forwarding decision:
//
//	stock == GOOGL && avg(price) > 50 : fwd(1)
//
// The Camus compiler turns a set of such rules into the configuration of
// a fixed-length match-action pipeline: it normalizes the conditions to
// disjunctive form, folds them into a multi-terminal binary decision
// diagram with aggressive reductions, slices the BDD into per-field
// components, and emits one match-action table per field (Algorithm 1 of
// the paper) plus a leaf table of merged actions and multicast groups.
//
// The package exposes the complete toolchain:
//
//   - ParseSpec reads a message-format specification (P4-style header
//     declarations plus @query_field/@query_counter annotations, Fig. 2).
//   - ParseSubscriptions reads subscription rules (Fig. 1 grammar).
//   - Compile produces a Program: table entries, multicast groups,
//     resource statistics.
//   - GenerateP4 / GenerateEntries render the static P4 pipeline and the
//     dynamic control-plane rules for deployment on a real target.
//   - NewSwitch instantiates a software model of the switching ASIC and
//     NewController manages incremental updates on it.
//   - NewPubSub wires all of it into the in-network publish/subscribe
//     engine of the paper's case study (Fig. 6), consuming MoldUDP64/ITCH
//     market data.
//
// The concrete types live in internal packages; this package re-exports
// them under stable names.
package camus

import (
	"camus/internal/compiler"
	"camus/internal/controlplane"
	"camus/internal/core"
	"camus/internal/dataplane"
	"camus/internal/itch"
	"camus/internal/lang"
	"camus/internal/p4gen"
	"camus/internal/pipeline"
	"camus/internal/spec"
)

// Language front end.
type (
	// Rule is one condition-action subscription rule.
	Rule = lang.Rule
	// Expr is a subscription condition.
	Expr = lang.Expr
	// Action is a forwarding or state-update action.
	Action = lang.Action
)

// ParseSubscriptions parses newline-separated subscription rules.
func ParseSubscriptions(src string) ([]Rule, error) { return lang.ParseRules(src) }

// ParseSubscription parses a single subscription rule.
func ParseSubscription(src string) (Rule, error) { return lang.ParseRule(src) }

// Fwd builds a forwarding action programmatically.
func Fwd(ports ...int) Action { return lang.Fwd(ports...) }

// Message format specifications.
type (
	// Spec is a parsed message-format specification.
	Spec = spec.Spec
	// MatchKind selects exact/range/ternary matching for a field.
	MatchKind = spec.MatchKind
)

// Match kinds re-exported for programmatic spec construction.
const (
	MatchRange   = spec.MatchRange
	MatchExact   = spec.MatchExact
	MatchTernary = spec.MatchTernary
)

// ParseSpec parses a Fig. 2-style message format specification.
func ParseSpec(src string) (*Spec, error) { return spec.Parse(src) }

// MustParseSpec is ParseSpec for known-good sources; it panics on error.
func MustParseSpec(src string) *Spec { return spec.MustParse(src) }

// Compiler.
type (
	// Program is a compiled subscription set: pipeline tables, actions,
	// multicast groups, and resource statistics.
	Program = compiler.Program
	// CompileOptions tunes the dynamic compilation step.
	CompileOptions = compiler.Options
	// Stats summarizes a program's switch resource usage.
	Stats = compiler.Stats
)

// Compile compiles parsed rules against a spec.
func Compile(sp *Spec, rules []Rule, opts CompileOptions) (*Program, error) {
	return compiler.Compile(sp, rules, opts)
}

// CompileSource parses and compiles subscription source text.
func CompileSource(sp *Spec, src string, opts CompileOptions) (*Program, error) {
	return compiler.CompileSource(sp, src, opts)
}

// GenerateP4 renders the static pipeline of a program as P4₁₄ source.
func GenerateP4(p *Program) string { return p4gen.GenerateP4(p) }

// GenerateEntries renders a program's control-plane rules in a
// line-oriented loadable form.
func GenerateEntries(p *Program) string { return p4gen.GenerateEntries(p) }

// Switch model and control plane.
type (
	// Switch is the software model of the programmable ASIC.
	Switch = pipeline.Switch
	// SwitchConfig sizes the modeled device.
	SwitchConfig = pipeline.Config
	// SwitchResult is a per-packet forwarding decision.
	SwitchResult = pipeline.Result
	// Controller installs and incrementally updates programs.
	Controller = controlplane.Controller
	// UpdateDelta reports the device writes an update needed.
	UpdateDelta = controlplane.Delta
)

// DefaultSwitchConfig models the paper's 32-port Tofino-class device.
func DefaultSwitchConfig() SwitchConfig { return pipeline.DefaultConfig() }

// NewSwitch instantiates a switch with a program installed.
func NewSwitch(p *Program, cfg SwitchConfig) (*Switch, error) { return pipeline.New(p, cfg) }

// NewController manages incremental updates for a switch.
func NewController(sw *Switch) *Controller { return controlplane.NewController(sw) }

// In-network pub/sub engine (the paper's case study).
type (
	// PubSub is the in-network publish/subscribe engine.
	PubSub = core.PubSub
	// PubSubConfig bundles the engine's knobs.
	PubSubConfig = core.Config
	// Delivery is one message's forwarding outcome.
	Delivery = core.Delivery
)

// NewPubSub creates a pub/sub deployment for a spec.
func NewPubSub(sp *Spec, cfg PubSubConfig) (*PubSub, error) { return core.NewPubSub(sp, cfg) }

// ITCH market-data protocol.
type (
	// AddOrder is the ITCH 5.0 add-order message.
	AddOrder = itch.AddOrder
	// MoldPacket is a MoldUDP64 datagram.
	MoldPacket = itch.MoldPacket
)

// Diagnostics and tooling.
type (
	// Trace is a packet's recorded walk through the compiled tables.
	Trace = compiler.Trace
	// WireExtractor parses spec-described packet bytes into field values.
	WireExtractor = compiler.WireExtractor
)

// NewWireExtractor builds a parser for the program's spec-described wire
// format (generic formats; ITCH uses the protocol-specific extractor
// inside PubSub).
func NewWireExtractor(p *Program) (*WireExtractor, error) {
	return compiler.NewWireExtractor(p)
}

// SuggestFieldOrder analyzes rules and returns a good BDD field order
// (equality discriminators first).
func SuggestFieldOrder(sp *Spec, rules []Rule) ([]string, error) {
	return compiler.SuggestFieldOrder(sp, rules)
}

// ApplySuggestedOrder installs the suggested order on the spec.
func ApplySuggestedOrder(sp *Spec, rules []Rule) ([]string, error) {
	return compiler.ApplySuggestedOrder(sp, rules)
}

// UDP dataplane: run a compiled program as a real software switch.
type (
	// UDPSwitch forwards MoldUDP64/ITCH datagrams between UDP sockets
	// according to the installed subscriptions.
	UDPSwitch = dataplane.Switch
	// UDPSwitchConfig configures ListenUDP.
	UDPSwitchConfig = dataplane.Config
)

// ListenUDP binds the dataplane's ingress socket and installs the initial
// subscription set.
func ListenUDP(cfg UDPSwitchConfig) (*UDPSwitch, error) { return dataplane.Listen(cfg) }
