// Package camus is a Go implementation of packet subscriptions for
// programmable ASICs — the system described in "Packet Subscriptions for
// Programmable ASICs" (Jepsen et al., HotNets 2018).
//
// A packet subscription is a stateful predicate over packet contents that
// determines a forwarding decision:
//
//	stock == GOOGL && avg(price) > 50 : fwd(1)
//
// The Camus compiler turns a set of such rules into the configuration of
// a fixed-length match-action pipeline: it normalizes the conditions to
// disjunctive form, folds them into a multi-terminal binary decision
// diagram with aggressive reductions, slices the BDD into per-field
// components, and emits one match-action table per field (Algorithm 1 of
// the paper) plus a leaf table of merged actions and multicast groups.
//
// The package exposes the complete toolchain:
//
//   - ParseSpec reads a message-format specification (P4-style header
//     declarations plus @query_field/@query_counter annotations, Fig. 2).
//   - ParseSubscriptions reads subscription rules (Fig. 1 grammar).
//   - Compile produces a Program: table entries, multicast groups,
//     resource statistics.
//   - GenerateP4 / GenerateEntries render the static P4 pipeline and the
//     dynamic control-plane rules for deployment on a real target.
//   - NewSwitch instantiates a software model of the switching ASIC and
//     NewController manages incremental updates on it.
//   - NewPubSub wires all of it into the in-network publish/subscribe
//     engine of the paper's case study (Fig. 6), consuming MoldUDP64/ITCH
//     market data.
//
// The concrete types live in internal packages; this package re-exports
// them under stable names.
package camus

import (
	"net/http"

	"camus/internal/analyze"
	"camus/internal/compiler"
	"camus/internal/controlplane"
	"camus/internal/core"
	"camus/internal/dataplane"
	"camus/internal/itch"
	"camus/internal/lang"
	"camus/internal/p4gen"
	"camus/internal/pipeline"
	"camus/internal/spec"
	"camus/internal/telemetry"
)

// Observability. Every layer of the toolchain — compiler, control plane,
// switch model, UDP dataplane — records into one shared Telemetry: atomic
// counters and gauges, fixed-bucket latency histograms, and a ring of
// recent control-plane install spans. Create one with NewTelemetry, hand
// it to the constructors below via WithTelemetry (or embed it in their
// Config), and read it back either programmatically (Snapshot) or over
// HTTP (ServeAdmin: Prometheus text at /metrics, a JSON Snapshot at
// /debug/camus, pprof under /debug/pprof/).
type (
	// Telemetry bundles a metrics Registry with a span Tracer.
	Telemetry = telemetry.Telemetry
	// Registry is a set of named counter/gauge/histogram series.
	Registry = telemetry.Registry
	// Snapshot is the unified point-in-time view of a registry: every
	// counter, gauge, and histogram plus recent install spans. The same
	// shape is served at /debug/camus and embedded in camus-bench output.
	Snapshot = telemetry.Snapshot
	// SpanRecord is one recorded control-plane operation.
	SpanRecord = telemetry.SpanRecord
	// AdminServer is a running observability HTTP endpoint.
	AdminServer = telemetry.AdminServer
)

// NewTelemetry creates an empty telemetry bundle (registry + tracer).
func NewTelemetry() *Telemetry { return telemetry.New() }

// TelemetryHandler serves /metrics, /debug/camus, and /debug/pprof/ for
// a telemetry bundle; mount it on any mux.
func TelemetryHandler(t *Telemetry) http.Handler { return telemetry.Handler(t) }

// ServeAdmin starts the observability endpoint on addr in the
// background; Close the returned server to stop it.
func ServeAdmin(addr string, t *Telemetry) (*AdminServer, error) { return telemetry.Serve(addr, t) }

// Option configures a facade constructor.
type Option func(*facadeOpts)

type facadeOpts struct {
	tel      *Telemetry
	analysis AnalysisPolicy
}

// WithTelemetry routes the constructed component's metrics and spans
// through t. Passing nil is a no-op (the component stays uninstrumented).
func WithTelemetry(t *Telemetry) Option {
	return func(o *facadeOpts) { o.tel = t }
}

// WithRegistry is WithTelemetry for callers that only have a bare metric
// registry; spans are recorded nowhere but counters/histograms land in r.
func WithRegistry(r *Registry) Option {
	return func(o *facadeOpts) {
		if r != nil {
			o.tel = &Telemetry{Registry: r}
		}
	}
}

func applyOpts(opts []Option) facadeOpts {
	var o facadeOpts
	for _, opt := range opts {
		opt(&o)
	}
	return o
}

// Language front end.
type (
	// Rule is one condition-action subscription rule.
	Rule = lang.Rule
	// Expr is a subscription condition.
	Expr = lang.Expr
	// Action is a forwarding or state-update action.
	Action = lang.Action
)

// ParseSubscriptions parses newline-separated subscription rules.
func ParseSubscriptions(src string) ([]Rule, error) { return lang.ParseRules(src) }

// ParseSubscription parses a single subscription rule.
func ParseSubscription(src string) (Rule, error) { return lang.ParseRule(src) }

// Fwd builds a forwarding action programmatically.
func Fwd(ports ...int) Action { return lang.Fwd(ports...) }

// Message format specifications.
type (
	// Spec is a parsed message-format specification.
	Spec = spec.Spec
	// MatchKind selects exact/range/ternary matching for a field.
	MatchKind = spec.MatchKind
)

// Match kinds re-exported for programmatic spec construction.
const (
	MatchRange   = spec.MatchRange
	MatchExact   = spec.MatchExact
	MatchTernary = spec.MatchTernary
)

// ParseSpec parses a Fig. 2-style message format specification.
func ParseSpec(src string) (*Spec, error) { return spec.Parse(src) }

// MustParseSpec is ParseSpec for known-good sources; it panics on error.
func MustParseSpec(src string) *Spec { return spec.MustParse(src) }

// Compiler.
type (
	// Program is a compiled subscription set: pipeline tables, actions,
	// multicast groups, and resource statistics.
	Program = compiler.Program
	// CompileOptions tunes the dynamic compilation step.
	CompileOptions = compiler.Options
	// Stats summarizes a program's switch resource usage.
	Stats = compiler.Stats
)

// Static analysis of rule sets (camus-vet). WithAnalysis makes Compile
// and CompileSource run the analyzer first and refuse rule sets the
// chosen policy rejects; the returned error is an *AnalysisRejection
// carrying the full diagnostic report.
type (
	// AnalysisPolicy selects how strict an analysis-gated compile is.
	AnalysisPolicy = analyze.Policy
	// AnalysisReport is the diagnostics produced by one analysis pass.
	AnalysisReport = analyze.Report
	// AnalysisDiagnostic is one finding with a stable CAMxxx code.
	AnalysisDiagnostic = analyze.Diagnostic
	// AnalysisOptions tunes an analysis pass (budget, pair limits).
	AnalysisOptions = analyze.Options
	// AnalysisRejection is the error an analysis-gated compile or an
	// admission gate returns for a rejected rule set.
	AnalysisRejection = analyze.RejectionError
)

// Analysis policies re-exported for WithAnalysis.
const (
	// AnalysisOff disables the pre-compile analysis (the default).
	AnalysisOff = analyze.PolicyOff
	// AnalysisLenient rejects rule sets with error diagnostics.
	AnalysisLenient = analyze.PolicyLenient
	// AnalysisStrict rejects on warnings too.
	AnalysisStrict = analyze.PolicyStrict
)

// WithAnalysis makes Compile/CompileSource statically analyze the rule
// set (unsatisfiable, shadowed, duplicate, ill-typed, conflicting rules;
// resource-budget overruns) and fail with an *AnalysisRejection when the
// policy rejects it.
func WithAnalysis(p AnalysisPolicy) Option {
	return func(o *facadeOpts) { o.analysis = p }
}

// Analyze runs the camus-vet static analysis over parsed rules without
// compiling, returning every diagnostic.
func Analyze(sp *Spec, rules []Rule, opts AnalysisOptions) *AnalysisReport {
	return analyze.Rules(sp, rules, opts)
}

// admitRules applies a facade analysis policy before compilation.
func (fo facadeOpts) admitRules(sp *Spec, rules []Rule) error {
	if fo.analysis == AnalysisOff {
		return nil
	}
	gate := analyze.NewGate(sp, analyze.Options{Telemetry: fo.tel.Reg()}, fo.analysis)
	_, err := gate.Admit(rules)
	return err
}

// Compile compiles parsed rules against a spec. WithTelemetry records
// the compile's duration and BDD statistics; WithAnalysis runs the
// static analyzer first and rejects bad rule sets before compilation.
func Compile(sp *Spec, rules []Rule, opts CompileOptions, o ...Option) (*Program, error) {
	fo := applyOpts(o)
	if fo.tel != nil {
		opts.Telemetry = fo.tel.Reg()
	}
	if err := fo.admitRules(sp, rules); err != nil {
		return nil, err
	}
	return compiler.Compile(sp, rules, opts)
}

// CompileSource parses and compiles subscription source text.
func CompileSource(sp *Spec, src string, opts CompileOptions, o ...Option) (*Program, error) {
	fo := applyOpts(o)
	if fo.tel != nil {
		opts.Telemetry = fo.tel.Reg()
	}
	if fo.analysis != AnalysisOff {
		rules, err := lang.ParseRules(src)
		if err != nil {
			return nil, err
		}
		if err := fo.admitRules(sp, rules); err != nil {
			return nil, err
		}
		return compiler.Compile(sp, rules, opts)
	}
	return compiler.CompileSource(sp, src, opts)
}

// GenerateP4 renders the static pipeline of a program as P4₁₄ source.
func GenerateP4(p *Program) string { return p4gen.GenerateP4(p) }

// GenerateEntries renders a program's control-plane rules in a
// line-oriented loadable form.
func GenerateEntries(p *Program) string { return p4gen.GenerateEntries(p) }

// Switch model and control plane.
type (
	// Switch is the software model of the programmable ASIC.
	Switch = pipeline.Switch
	// SwitchConfig sizes the modeled device.
	SwitchConfig = pipeline.Config
	// SwitchResult is a per-packet forwarding decision.
	SwitchResult = pipeline.Result
	// Controller installs and incrementally updates programs.
	Controller = controlplane.Controller
	// UpdateDelta reports the device writes an update needed.
	UpdateDelta = controlplane.Delta
)

// DefaultSwitchConfig models the paper's 32-port Tofino-class device.
func DefaultSwitchConfig() SwitchConfig { return pipeline.DefaultConfig() }

// NewSwitch instantiates a switch with a program installed. WithTelemetry
// enables the device's hardware-style counters: per-table hit/miss,
// register reads, occupancy gauges.
func NewSwitch(p *Program, cfg SwitchConfig, o ...Option) (*Switch, error) {
	if fo := applyOpts(o); fo.tel != nil {
		cfg.Telemetry = fo.tel.Reg()
	}
	return pipeline.New(p, cfg)
}

// NewController manages incremental updates for a switch. WithTelemetry
// records one controlplane_install span per Update, with retry counts
// and ok/rolled_back/rollback_failed outcomes.
func NewController(sw *Switch, o ...Option) *Controller {
	ctl := controlplane.NewController(sw)
	if fo := applyOpts(o); fo.tel != nil {
		ctl.SetTelemetry(fo.tel)
	}
	return ctl
}

// In-network pub/sub engine (the paper's case study).
type (
	// PubSub is the in-network publish/subscribe engine.
	PubSub = core.PubSub
	// PubSubConfig bundles the engine's knobs.
	PubSubConfig = core.Config
	// Delivery is one message's forwarding outcome.
	Delivery = core.Delivery
)

// NewPubSub creates a pub/sub deployment for a spec. WithTelemetry
// instruments every layer of the deployment through one shared registry;
// read it back with PubSub.Snapshot.
func NewPubSub(sp *Spec, cfg PubSubConfig, o ...Option) (*PubSub, error) {
	if fo := applyOpts(o); fo.tel != nil {
		cfg.Telemetry = fo.tel
	}
	return core.NewPubSub(sp, cfg)
}

// ITCH market-data protocol.
type (
	// AddOrder is the ITCH 5.0 add-order message.
	AddOrder = itch.AddOrder
	// MoldPacket is a MoldUDP64 datagram.
	MoldPacket = itch.MoldPacket
)

// Diagnostics and tooling.
type (
	// Trace is a packet's recorded walk through the compiled tables.
	Trace = compiler.Trace
	// WireExtractor parses spec-described packet bytes into field values.
	WireExtractor = compiler.WireExtractor
)

// NewWireExtractor builds a parser for the program's spec-described wire
// format (generic formats; ITCH uses the protocol-specific extractor
// inside PubSub).
func NewWireExtractor(p *Program) (*WireExtractor, error) {
	return compiler.NewWireExtractor(p)
}

// SuggestFieldOrder analyzes rules and returns a good BDD field order
// (equality discriminators first).
func SuggestFieldOrder(sp *Spec, rules []Rule) ([]string, error) {
	return compiler.SuggestFieldOrder(sp, rules)
}

// ApplySuggestedOrder installs the suggested order on the spec.
func ApplySuggestedOrder(sp *Spec, rules []Rule) ([]string, error) {
	return compiler.ApplySuggestedOrder(sp, rules)
}

// UDP dataplane: run a compiled program as a real software switch.
type (
	// UDPSwitch forwards MoldUDP64/ITCH datagrams between UDP sockets
	// according to the installed subscriptions.
	UDPSwitch = dataplane.Switch
	// UDPSwitchConfig configures ListenUDP.
	UDPSwitchConfig = dataplane.Config
	// SubscriberConfig describes one subscriber endpoint for
	// UDPSwitch.Subscribe.
	SubscriberConfig = dataplane.SubscriberConfig
	// Subscription is the owning handle for one attached subscriber;
	// Close detaches it.
	Subscription = dataplane.Subscription
)

// ListenUDP binds the dataplane's ingress socket and installs the initial
// subscription set. WithTelemetry instruments the whole stack — socket
// counters, processing latency, and the embedded engine's metrics — and
// makes the switch servable via ServeAdmin.
func ListenUDP(cfg UDPSwitchConfig, o ...Option) (*UDPSwitch, error) {
	if fo := applyOpts(o); fo.tel != nil {
		cfg.Telemetry = fo.tel
	}
	return dataplane.Listen(cfg)
}
