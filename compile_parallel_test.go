package camus

import (
	"math/rand"
	"reflect"
	"testing"

	"camus/internal/compiler"
	"camus/internal/lang"
	"camus/internal/workload"
)

// requireSameProgramsW fails unless the two programs are bit-identical in
// every externally observable way: stats, table entries, leaf actions,
// multicast groups, and forwarding behavior on random probes. It is the
// workload-level twin of the helper in internal/compiler's tests.
func requireSameProgramsW(t *testing.T, want, got *compiler.Program, probes [][]uint64) {
	t.Helper()
	if !reflect.DeepEqual(want.Stats, got.Stats) {
		t.Fatalf("stats differ:\n serial:   %+v\n parallel: %+v", want.Stats, got.Stats)
	}
	if want.InitialState != got.InitialState {
		t.Fatalf("initial state %d != %d", got.InitialState, want.InitialState)
	}
	if w, g := want.Dump(), got.Dump(); w != g {
		t.Fatalf("table dumps differ:\n--- serial ---\n%s\n--- parallel ---\n%s", w, g)
	}
	if !reflect.DeepEqual(want.Groups, got.Groups) {
		t.Fatalf("multicast groups differ: %v != %v", got.Groups, want.Groups)
	}
	for i := range want.Tables {
		if !reflect.DeepEqual(want.Tables[i].Entries, got.Tables[i].Entries) {
			t.Fatalf("table %d entries differ", i)
		}
	}
	for _, vals := range probes {
		w := want.Evaluate(append([]uint64(nil), vals...))
		g := got.Evaluate(append([]uint64(nil), vals...))
		if w.Key() != g.Key() {
			t.Fatalf("evaluate(%v): %q != %q", vals, g.Key(), w.Key())
		}
	}
}

func randomProgramProbes(p *compiler.Program, n int, seed int64) [][]uint64 {
	r := rand.New(rand.NewSource(seed))
	probes := make([][]uint64, n)
	for i := range probes {
		vals := make([]uint64, len(p.Fields))
		for f := range vals {
			if max := p.Fields[f].Max; max != ^uint64(0) {
				vals[f] = r.Uint64() % (max + 1)
			} else {
				vals[f] = r.Uint64()
			}
		}
		probes[i] = vals
	}
	return probes
}

// TestParallelCompileMatchesSerialITCH is the differential guarantee the
// Workers knob advertises: on the Fig. 5c ITCH workload, a parallel
// compile is bit-identical to the fully serial one. The workload size is
// chosen to exceed the parallel-normalization threshold so every fan-out
// path actually runs.
func TestParallelCompileMatchesSerialITCH(t *testing.T) {
	sp := workload.ITCHSpec()
	cfg := workload.DefaultITCHSubsConfig()
	cfg.Subscriptions = 2000
	rules := workload.ITCHSubscriptions(cfg)

	serial, err := compiler.Compile(sp, rules, compiler.Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 8} {
		par, err := compiler.Compile(sp, rules, compiler.Options{Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		requireSameProgramsW(t, serial, par, randomProgramProbes(serial, 300, 7))
	}
}

// TestParallelCompileMatchesSerialSiena repeats the differential check on
// the Siena workload, which exercises range predicates, multi-field
// conjunctions, and domain compression.
func TestParallelCompileMatchesSerialSiena(t *testing.T) {
	cfg := workload.DefaultSienaConfig()
	cfg.Subscriptions = 600
	cfg.Predicates = 4
	sp := workload.SienaSpec(cfg)
	rules := workload.Siena(cfg)

	serial, err := compiler.Compile(sp, rules, compiler.Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	par, err := compiler.Compile(sp, rules, compiler.Options{Workers: 6})
	if err != nil {
		t.Fatal(err)
	}
	requireSameProgramsW(t, serial, par, randomProgramProbes(serial, 300, 11))
}

// TestSessionChurnMatchesFullCompile drives an incremental Session through
// several churn rounds of the ITCH workload and checks after every round
// that the memoized recompile is indistinguishable from compiling the live
// rule set from scratch.
func TestSessionChurnMatchesFullCompile(t *testing.T) {
	sp := workload.ITCHSpec()
	cfg := workload.DefaultITCHSubsConfig()
	cfg.Subscriptions = 1000
	rules := workload.ITCHSubscriptions(cfg)

	sess := compiler.NewSession(sp, compiler.Options{})
	handles, err := sess.AddRules(rules)
	if err != nil {
		t.Fatal(err)
	}

	// The session's live set, mirrored as (handle, rule) in insertion
	// order so a reference full compile can be built each round.
	type liveEntry struct {
		handle int
		rule   lang.Rule
	}
	live := make([]liveEntry, len(rules))
	for i := range rules {
		live[i] = liveEntry{handles[i], rules[i]}
	}

	extraCfg := cfg
	extraCfg.Seed = 999
	extra := workload.ITCHSubscriptions(extraCfg)
	nextExtra := 0

	r := rand.New(rand.NewSource(42))
	for round := 0; round < 3; round++ {
		// Remove 1% of the live set, add the same number of fresh rules.
		n := len(live) / 100
		for i := 0; i < n; i++ {
			j := r.Intn(len(live))
			if err := sess.RemoveRules(live[j].handle); err != nil {
				t.Fatal(err)
			}
			live = append(live[:j], live[j+1:]...)
		}
		add := extra[nextExtra : nextExtra+n]
		nextExtra += n
		newHandles, err := sess.AddRules(add)
		if err != nil {
			t.Fatal(err)
		}
		for i, h := range newHandles {
			live = append(live, liveEntry{h, add[i]})
		}

		inc, err := sess.Recompile()
		if err != nil {
			t.Fatal(err)
		}
		if sess.Len() != len(live) {
			t.Fatalf("session tracks %d rules, test mirror has %d", sess.Len(), len(live))
		}

		liveRules := make([]lang.Rule, len(live))
		for i, e := range live {
			liveRules[i] = e.rule
		}
		full, err := compiler.Compile(sp, liveRules, compiler.Options{})
		if err != nil {
			t.Fatal(err)
		}
		requireSameProgramsW(t, full, inc, randomProgramProbes(full, 200, int64(round)))
	}
}
